#include "core/coarse_recall.h"

#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "util/rng.h"

namespace tps {
namespace {

class CoarseRecallTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new ModelZoo(*ModelZoo::Create(NlpPaperZooSpecs()));
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    simulator_ = new FineTuneSimulator();
    matrix_ = new PerformanceMatrix(*PerformanceMatrix::Build(
        *zoo_, registry_->Benchmarks(TaskDomain::kNLP), *simulator_,
        Hyperparams::DefaultsFor(TaskDomain::kNLP)));
    clustering_ = new ModelClustering(
        *ClusterModels(*matrix_, *zoo_, ModelClusteringOptions()));
    target_ = *registry_->Find("mnli");
  }

  static ModelZoo* zoo_;
  static DatasetRegistry* registry_;
  static FineTuneSimulator* simulator_;
  static PerformanceMatrix* matrix_;
  static ModelClustering* clustering_;
  static const Dataset* target_;
};

ModelZoo* CoarseRecallTest::zoo_ = nullptr;
DatasetRegistry* CoarseRecallTest::registry_ = nullptr;
FineTuneSimulator* CoarseRecallTest::simulator_ = nullptr;
PerformanceMatrix* CoarseRecallTest::matrix_ = nullptr;
ModelClustering* CoarseRecallTest::clustering_ = nullptr;
const Dataset* CoarseRecallTest::target_ = nullptr;

TEST_F(CoarseRecallTest, RanksAllModelsSortedByScore) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  auto result = recall.Recall(*target_, RecallOptions(), nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ranked.size(), zoo_->size());
  for (size_t i = 1; i < result->ranked.size(); ++i) {
    EXPECT_GE(result->ranked[i - 1].recall_score,
              result->ranked[i].recall_score);
  }
}

TEST_F(CoarseRecallTest, ChargesHalfEpochPerProxy) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  EpochBudget budget;
  auto result = *recall.Recall(*target_, RecallOptions(), &budget);
  EXPECT_EQ(result.proxies_computed,
            clustering_->NonSingletonClusters().size());
  EXPECT_DOUBLE_EQ(budget.inference_epochs(),
                   0.5 * static_cast<double>(result.proxies_computed));
  EXPECT_DOUBLE_EQ(budget.training_epochs(), 0.0);
}

TEST_F(CoarseRecallTest, SingletonModelsGetPropagatedScores) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  auto result = *recall.Recall(*target_, RecallOptions(), nullptr);
  for (const RecallEntry& entry : result.ranked) {
    EXPECT_EQ(entry.via_propagation,
              clustering_->IsSingletonModel(entry.model_index));
    EXPECT_GE(entry.proxy_component, 0.0);
    EXPECT_LE(entry.proxy_component, 1.0);
    EXPECT_NEAR(entry.recall_score,
                entry.prior_accuracy * entry.proxy_component, 1e-12);
  }
}

TEST_F(CoarseRecallTest, TopModelsAndRankOf) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  auto result = *recall.Recall(*target_, RecallOptions(), nullptr);
  const auto top5 = result.TopModels(5);
  ASSERT_EQ(top5.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result.RankOf(top5[i]), i);
  }
  // Requesting more than the zoo size returns everything.
  EXPECT_EQ(result.TopModels(1000).size(), zoo_->size());
}

TEST_F(CoarseRecallTest, TopModelsEdgeCases) {
  RecallResult result;
  EXPECT_TRUE(result.TopModels(0).empty());
  EXPECT_TRUE(result.TopModels(5).empty());  // Empty ranking.

  result.ranked.resize(3);
  result.ranked[0].model_index = 7;
  result.ranked[1].model_index = 2;
  result.ranked[2].model_index = 9;
  EXPECT_TRUE(result.TopModels(0).empty());
  EXPECT_EQ(result.TopModels(2), (std::vector<size_t>{7, 2}));
  // k beyond the ranking size returns everything, never out-of-bounds.
  EXPECT_EQ(result.TopModels(3), (std::vector<size_t>{7, 2, 9}));
  EXPECT_EQ(result.TopModels(1000), (std::vector<size_t>{7, 2, 9}));
}

TEST_F(CoarseRecallTest, RankOfAbsentModelReturnsRankedSize) {
  RecallResult result;
  EXPECT_EQ(result.RankOf(0), 0u);  // Empty ranking: everything is absent.

  result.ranked.resize(2);
  result.ranked[0].model_index = 4;
  result.ranked[1].model_index = 1;
  EXPECT_EQ(result.RankOf(4), 0u);
  EXPECT_EQ(result.RankOf(1), 1u);
  // Absent (or out-of-zoo) indices map to the one-past-the-end rank.
  EXPECT_EQ(result.RankOf(0), result.ranked.size());
  EXPECT_EQ(result.RankOf(999), result.ranked.size());
}

TEST_F(CoarseRecallTest, EqualScoresBreakTiesByModelIndex) {
  // The ranking uses a stable sort over index-ordered entries, so models
  // with exactly equal recall scores must appear in ascending model-index
  // order. The no-prior ablation produces real exact ties: every singleton
  // propagated from the same cluster (Eq. 4) shares one proxy component.
  CoarseRecall recall(zoo_, matrix_, clustering_);
  RecallOptions options;
  options.use_accuracy_prior = false;
  auto result = *recall.Recall(*target_, options, nullptr);
  size_t tied_pairs = 0;
  for (size_t i = 1; i < result.ranked.size(); ++i) {
    if (result.ranked[i].recall_score == result.ranked[i - 1].recall_score) {
      ++tied_pairs;
      EXPECT_LT(result.ranked[i - 1].model_index,
                result.ranked[i].model_index)
          << "tied scores at ranks " << i - 1 << "," << i;
    }
  }
  EXPECT_GT(tied_pairs, 0u) << "expected exact ties under the no-prior "
                               "ablation; tie-break check was vacuous";
}

TEST_F(CoarseRecallTest, RepeatedRecallIsDeterministic) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  auto first = *recall.Recall(*target_, RecallOptions(), nullptr);
  for (int round = 0; round < 3; ++round) {
    auto again = *recall.Recall(*target_, RecallOptions(), nullptr);
    ASSERT_EQ(again.ranked.size(), first.ranked.size());
    for (size_t i = 0; i < first.ranked.size(); ++i) {
      EXPECT_EQ(again.ranked[i].model_index, first.ranked[i].model_index);
      EXPECT_EQ(again.ranked[i].recall_score, first.ranked[i].recall_score);
    }
  }
}

TEST_F(CoarseRecallTest, RecallsBetterThanRandomOnMnli) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  auto result = *recall.Recall(*target_, RecallOptions(), nullptr);
  const std::vector<double> truth = *TrueFinalAccuracies(
      *zoo_, *target_, *simulator_,
      Hyperparams::DefaultsFor(TaskDomain::kNLP));
  const double recalled = MeanAt(truth, result.TopModels(10));
  Rng rng(5);
  double random = 0.0;
  for (int draw = 0; draw < 30; ++draw) {
    random += MeanAt(truth, rng.SampleWithoutReplacement(zoo_->size(), 10));
  }
  random /= 30.0;
  EXPECT_GT(recalled, random);
}

TEST_F(CoarseRecallTest, DirectScoringAblationComputesAllProxies) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  RecallOptions options;
  options.use_cluster_representatives = false;
  EpochBudget budget;
  auto result = *recall.Recall(*target_, options, &budget);
  EXPECT_EQ(result.proxies_computed, zoo_->size());
  EXPECT_DOUBLE_EQ(budget.inference_epochs(), 0.5 * 40.0);
  for (const RecallEntry& entry : result.ranked) {
    EXPECT_FALSE(entry.via_propagation);
  }
}

TEST_F(CoarseRecallTest, PriorAblationUsesProxyOnly) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  RecallOptions options;
  options.use_accuracy_prior = false;
  auto result = *recall.Recall(*target_, options, nullptr);
  for (const RecallEntry& entry : result.ranked) {
    EXPECT_DOUBLE_EQ(entry.recall_score, entry.proxy_component);
  }
}

TEST_F(CoarseRecallTest, WorksWithAllProxyScorers) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  for (const char* proxy : {"leep", "nce", "logme", "knn"}) {
    RecallOptions options;
    options.proxy = proxy;
    auto result = recall.Recall(*target_, options, nullptr);
    EXPECT_TRUE(result.ok()) << proxy;
  }
  RecallOptions bad;
  bad.proxy = "bogus";
  EXPECT_TRUE(recall.Recall(*target_, bad, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CoarseRecallTest, DeterministicAcrossCalls) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  auto a = *recall.Recall(*target_, RecallOptions(), nullptr);
  auto b = *recall.Recall(*target_, RecallOptions(), nullptr);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].model_index, b.ranked[i].model_index);
    EXPECT_DOUBLE_EQ(a.ranked[i].recall_score, b.ranked[i].recall_score);
  }
}

}  // namespace
}  // namespace tps
