#include "core/coarse_recall.h"

#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "util/rng.h"

namespace tps {
namespace {

class CoarseRecallTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new ModelZoo(*ModelZoo::Create(NlpPaperZooSpecs()));
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    simulator_ = new FineTuneSimulator();
    matrix_ = new PerformanceMatrix(*PerformanceMatrix::Build(
        *zoo_, registry_->Benchmarks(TaskDomain::kNLP), *simulator_,
        Hyperparams::DefaultsFor(TaskDomain::kNLP)));
    clustering_ = new ModelClustering(
        *ClusterModels(*matrix_, *zoo_, ModelClusteringOptions()));
    target_ = *registry_->Find("mnli");
  }

  static ModelZoo* zoo_;
  static DatasetRegistry* registry_;
  static FineTuneSimulator* simulator_;
  static PerformanceMatrix* matrix_;
  static ModelClustering* clustering_;
  static const Dataset* target_;
};

ModelZoo* CoarseRecallTest::zoo_ = nullptr;
DatasetRegistry* CoarseRecallTest::registry_ = nullptr;
FineTuneSimulator* CoarseRecallTest::simulator_ = nullptr;
PerformanceMatrix* CoarseRecallTest::matrix_ = nullptr;
ModelClustering* CoarseRecallTest::clustering_ = nullptr;
const Dataset* CoarseRecallTest::target_ = nullptr;

TEST_F(CoarseRecallTest, RanksAllModelsSortedByScore) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  auto result = recall.Recall(*target_, RecallOptions(), nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ranked.size(), zoo_->size());
  for (size_t i = 1; i < result->ranked.size(); ++i) {
    EXPECT_GE(result->ranked[i - 1].recall_score,
              result->ranked[i].recall_score);
  }
}

TEST_F(CoarseRecallTest, ChargesHalfEpochPerProxy) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  EpochBudget budget;
  auto result = *recall.Recall(*target_, RecallOptions(), &budget);
  EXPECT_EQ(result.proxies_computed,
            clustering_->NonSingletonClusters().size());
  EXPECT_DOUBLE_EQ(budget.inference_epochs(),
                   0.5 * static_cast<double>(result.proxies_computed));
  EXPECT_DOUBLE_EQ(budget.training_epochs(), 0.0);
}

TEST_F(CoarseRecallTest, SingletonModelsGetPropagatedScores) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  auto result = *recall.Recall(*target_, RecallOptions(), nullptr);
  for (const RecallEntry& entry : result.ranked) {
    EXPECT_EQ(entry.via_propagation,
              clustering_->IsSingletonModel(entry.model_index));
    EXPECT_GE(entry.proxy_component, 0.0);
    EXPECT_LE(entry.proxy_component, 1.0);
    EXPECT_NEAR(entry.recall_score,
                entry.prior_accuracy * entry.proxy_component, 1e-12);
  }
}

TEST_F(CoarseRecallTest, TopModelsAndRankOf) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  auto result = *recall.Recall(*target_, RecallOptions(), nullptr);
  const auto top5 = result.TopModels(5);
  ASSERT_EQ(top5.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result.RankOf(top5[i]), i);
  }
  // Requesting more than the zoo size returns everything.
  EXPECT_EQ(result.TopModels(1000).size(), zoo_->size());
}

TEST_F(CoarseRecallTest, RecallsBetterThanRandomOnMnli) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  auto result = *recall.Recall(*target_, RecallOptions(), nullptr);
  const std::vector<double> truth = *TrueFinalAccuracies(
      *zoo_, *target_, *simulator_,
      Hyperparams::DefaultsFor(TaskDomain::kNLP));
  const double recalled = MeanAt(truth, result.TopModels(10));
  Rng rng(5);
  double random = 0.0;
  for (int draw = 0; draw < 30; ++draw) {
    random += MeanAt(truth, rng.SampleWithoutReplacement(zoo_->size(), 10));
  }
  random /= 30.0;
  EXPECT_GT(recalled, random);
}

TEST_F(CoarseRecallTest, DirectScoringAblationComputesAllProxies) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  RecallOptions options;
  options.use_cluster_representatives = false;
  EpochBudget budget;
  auto result = *recall.Recall(*target_, options, &budget);
  EXPECT_EQ(result.proxies_computed, zoo_->size());
  EXPECT_DOUBLE_EQ(budget.inference_epochs(), 0.5 * 40.0);
  for (const RecallEntry& entry : result.ranked) {
    EXPECT_FALSE(entry.via_propagation);
  }
}

TEST_F(CoarseRecallTest, PriorAblationUsesProxyOnly) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  RecallOptions options;
  options.use_accuracy_prior = false;
  auto result = *recall.Recall(*target_, options, nullptr);
  for (const RecallEntry& entry : result.ranked) {
    EXPECT_DOUBLE_EQ(entry.recall_score, entry.proxy_component);
  }
}

TEST_F(CoarseRecallTest, WorksWithAllProxyScorers) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  for (const char* proxy : {"leep", "nce", "logme", "knn"}) {
    RecallOptions options;
    options.proxy = proxy;
    auto result = recall.Recall(*target_, options, nullptr);
    EXPECT_TRUE(result.ok()) << proxy;
  }
  RecallOptions bad;
  bad.proxy = "bogus";
  EXPECT_TRUE(recall.Recall(*target_, bad, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CoarseRecallTest, DeterministicAcrossCalls) {
  CoarseRecall recall(zoo_, matrix_, clustering_);
  auto a = *recall.Recall(*target_, RecallOptions(), nullptr);
  auto b = *recall.Recall(*target_, RecallOptions(), nullptr);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].model_index, b.ranked[i].model_index);
    EXPECT_DOUBLE_EQ(a.ranked[i].recall_score, b.ranked[i].recall_score);
  }
}

}  // namespace
}  // namespace tps
