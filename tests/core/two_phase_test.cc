#include "core/two_phase.h"

#include <numeric>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "data/registry.h"
#include "model/paper_zoo.h"

namespace tps {
namespace {

/// End-to-end world shared by the two-phase and integration tests. Builds
/// both NLP and CV offline artifacts once.
class TwoPhaseTest : public testing::Test {
 protected:
  struct World {
    ModelZoo zoo;
    PerformanceMatrix matrix;
    ModelClustering clustering;
  };

  static World* Build(TaskDomain domain) {
    ModelZoo zoo = *ModelZoo::Create(domain == TaskDomain::kNLP
                                         ? NlpPaperZooSpecs()
                                         : CvPaperZooSpecs());
    PerformanceMatrix matrix = *PerformanceMatrix::Build(
        zoo, registry_->Benchmarks(domain), *simulator_,
        Hyperparams::DefaultsFor(domain));
    ModelClustering clustering =
        *ClusterModels(matrix, zoo, ModelClusteringOptions());
    return new World{std::move(zoo), std::move(matrix),
                     std::move(clustering)};
  }

  static void SetUpTestSuite() {
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    simulator_ = new FineTuneSimulator();
    nlp_ = Build(TaskDomain::kNLP);
    cv_ = Build(TaskDomain::kCV);
  }

  static DatasetRegistry* registry_;
  static FineTuneSimulator* simulator_;
  static World* nlp_;
  static World* cv_;
};

DatasetRegistry* TwoPhaseTest::registry_ = nullptr;
FineTuneSimulator* TwoPhaseTest::simulator_ = nullptr;
TwoPhaseTest::World* TwoPhaseTest::nlp_ = nullptr;
TwoPhaseTest::World* TwoPhaseTest::cv_ = nullptr;

TEST_F(TwoPhaseTest, ReportAccountsForBothPhases) {
  TwoPhaseSelector selector(&nlp_->zoo, &nlp_->matrix, &nlp_->clustering,
                            simulator_);
  auto report = selector.Select(**registry_->Find("mnli"),
                                TwoPhaseOptions());
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(
      report->budget.inference_epochs(),
      0.5 * static_cast<double>(report->recall.proxies_computed));
  EXPECT_DOUBLE_EQ(report->budget.training_epochs(),
                   report->selection.training_epochs);
  EXPECT_GT(report->budget.total_epochs(), 0.0);
  // Fine-selection starts from exactly the recalled top-10.
  EXPECT_EQ(report->selection.survivors_per_stage.front(), 10u);
}

TEST_F(TwoPhaseTest, SelectedModelComesFromRecalledSet) {
  TwoPhaseSelector selector(&nlp_->zoo, &nlp_->matrix, &nlp_->clustering,
                            simulator_);
  auto report = *selector.Select(**registry_->Find("boolq"),
                                 TwoPhaseOptions());
  const auto top10 = report.recall.TopModels(10);
  EXPECT_NE(std::find(top10.begin(), top10.end(),
                      report.selection.selected_model),
            top10.end());
}

TEST_F(TwoPhaseTest, CheaperThanHalvingWhichIsCheaperThanBruteForce) {
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  std::vector<size_t> all(nlp_->zoo.size());
  std::iota(all.begin(), all.end(), 0);
  TwoPhaseSelector selector(&nlp_->zoo, &nlp_->matrix, &nlp_->clustering,
                            simulator_);
  SuccessiveHalvingSelector sh(&nlp_->zoo, simulator_);
  BruteForceSelector bf(&nlp_->zoo, simulator_);

  for (const Dataset* target : registry_->Targets(TaskDomain::kNLP)) {
    auto report = *selector.Select(*target, TwoPhaseOptions(), hp);
    EpochBudget sh_budget, bf_budget;
    (void)*sh.Select(all, *target, hp, &sh_budget);
    (void)*bf.Select(all, *target, hp, &bf_budget);
    EXPECT_LT(report.budget.total_epochs(), sh_budget.total_epochs())
        << target->name();
    EXPECT_LT(sh_budget.total_epochs(), bf_budget.total_epochs())
        << target->name();
    // The paper's headline: >= 2x over SH, >= 5x over BF.
    EXPECT_GT(sh_budget.total_epochs() / report.budget.total_epochs(), 2.0)
        << target->name();
    EXPECT_GT(bf_budget.total_epochs() / report.budget.total_epochs(), 5.0)
        << target->name();
  }
}

TEST_F(TwoPhaseTest, AccuracyNearBruteForceOnAllTargets) {
  // The paper's Table VI: 2PH accuracy within ~1 point of brute force.
  // Our reproduction allows a slightly wider band (see EXPERIMENTS.md).
  for (TaskDomain domain : {TaskDomain::kNLP, TaskDomain::kCV}) {
    World* world = domain == TaskDomain::kNLP ? nlp_ : cv_;
    const Hyperparams hp = Hyperparams::DefaultsFor(domain);
    std::vector<size_t> all(world->zoo.size());
    std::iota(all.begin(), all.end(), 0);
    TwoPhaseSelector selector(&world->zoo, &world->matrix,
                              &world->clustering, simulator_);
    BruteForceSelector bf(&world->zoo, simulator_);
    for (const Dataset* target : registry_->Targets(domain)) {
      auto report = *selector.Select(*target, TwoPhaseOptions(), hp);
      auto bf_outcome = *bf.Select(all, *target, hp, nullptr);
      EXPECT_GE(report.selection.selected_accuracy,
                bf_outcome.selected_accuracy - 0.06)
          << target->name();
    }
  }
}

TEST_F(TwoPhaseTest, CvUsesFourEpochDefaults) {
  TwoPhaseSelector selector(&cv_->zoo, &cv_->matrix, &cv_->clustering,
                            simulator_);
  auto report = *selector.Select(**registry_->Find("beans"),
                                 TwoPhaseOptions());
  EXPECT_EQ(report.selection.survivors_per_stage.size(), 4u);
}

TEST_F(TwoPhaseTest, RecallSizeOptionRespected) {
  TwoPhaseSelector selector(&nlp_->zoo, &nlp_->matrix, &nlp_->clustering,
                            simulator_);
  TwoPhaseOptions options;
  options.recall.top_k_models = 4;
  auto report = *selector.Select(**registry_->Find("mnli"), options);
  EXPECT_EQ(report.selection.survivors_per_stage.front(), 4u);
}

TEST_F(TwoPhaseTest, EvaluationHelpers) {
  const std::vector<double> accs = {0.3, 0.9, 0.5, 0.7};
  EXPECT_EQ(BestModel(accs), 1u);
  EXPECT_EQ(TopKByAccuracy(accs, 2), (std::vector<size_t>{1, 3}));
  EXPECT_EQ(TopKByAccuracy(accs, 10).size(), 4u);
  EXPECT_DOUBLE_EQ(MeanAt(accs, {0, 2}), 0.4);
  EXPECT_DOUBLE_EQ(MeanAt(accs, {}), 0.0);
}

}  // namespace
}  // namespace tps
