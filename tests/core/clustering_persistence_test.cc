#include <fstream>

#include <gtest/gtest.h>

#include "core/model_clusterer.h"
#include "data/registry.h"
#include "model/paper_zoo.h"

namespace tps {
namespace {

class ClusteringPersistenceTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new ModelZoo(*ModelZoo::Create(CvPaperZooSpecs()));
    auto registry = *DatasetRegistry::CreatePaperInventory();
    FineTuneSimulator simulator;
    auto matrix = *PerformanceMatrix::Build(
        *zoo_, registry.Benchmarks(TaskDomain::kCV), simulator,
        Hyperparams::DefaultsFor(TaskDomain::kCV));
    clustering_ = new ModelClustering(
        *ClusterModels(matrix, *zoo_, ModelClusteringOptions()));
  }

  static ModelZoo* zoo_;
  static ModelClustering* clustering_;
};

ModelZoo* ClusteringPersistenceTest::zoo_ = nullptr;
ModelClustering* ClusteringPersistenceTest::clustering_ = nullptr;

TEST_F(ClusteringPersistenceTest, SaveLoadRoundTrips) {
  const std::string path = testing::TempDir() + "/tps_clustering.txt";
  ASSERT_TRUE(SaveClustering(*clustering_, path).ok());
  auto loaded = LoadClustering(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->clusters.assignments,
            clustering_->clusters.assignments);
  EXPECT_EQ(loaded->clusters.num_clusters,
            clustering_->clusters.num_clusters);
  EXPECT_EQ(loaded->representatives, clustering_->representatives);
  EXPECT_EQ(loaded->options.top_k, clustering_->options.top_k);
  EXPECT_EQ(loaded->options.similarity, clustering_->options.similarity);
  EXPECT_EQ(loaded->options.algorithm, clustering_->options.algorithm);
  EXPECT_NEAR(loaded->options.distance_threshold,
              clustering_->options.distance_threshold, 1e-15);
  EXPECT_TRUE(loaded->distances.ApproxEquals(clustering_->distances, 1e-12));
}

TEST_F(ClusteringPersistenceTest, LoadedClusteringDrivesRecallIdentically) {
  // The persisted artifact must be behaviourally identical, not just
  // field-equal: NonSingletonClusters and representative lookups agree.
  const std::string path = testing::TempDir() + "/tps_clustering2.txt";
  ASSERT_TRUE(SaveClustering(*clustering_, path).ok());
  auto loaded = *LoadClustering(path);
  EXPECT_EQ(loaded.NonSingletonClusters(),
            clustering_->NonSingletonClusters());
  for (size_t m = 0; m < zoo_->size(); ++m) {
    EXPECT_EQ(loaded.IsSingletonModel(m),
              clustering_->IsSingletonModel(m));
    EXPECT_EQ(loaded.ClusterOf(m), clustering_->ClusterOf(m));
  }
}

TEST_F(ClusteringPersistenceTest, LoadRejectsCorruptInput) {
  EXPECT_TRUE(LoadClustering("/no/such/file").status().IsIOError());
  const std::string path = testing::TempDir() + "/tps_bad_clustering.txt";
  {
    std::ofstream out(path);
    out << "wrong header\n";
  }
  EXPECT_TRUE(LoadClustering(path).status().IsInvalidArgument());
  {
    std::ofstream out(path);
    out << "tps-model-clustering v1\n5 9\n";  // More clusters than models.
  }
  EXPECT_TRUE(LoadClustering(path).status().IsInvalidArgument());
  {
    std::ofstream out(path);
    out << "tps-model-clustering v1\n2 2\n0 0 5 0 0.1 42\n0 7\n";  // Bad
                                                                   // assign.
  }
  EXPECT_TRUE(LoadClustering(path).status().IsInvalidArgument());
}

TEST_F(ClusteringPersistenceTest, SaveToUnwritablePathFails) {
  EXPECT_TRUE(
      SaveClustering(*clustering_, "/no-dir/x.txt").IsIOError());
}

}  // namespace
}  // namespace tps
