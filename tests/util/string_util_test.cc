#include "util/string_util.h"

#include <gtest/gtest.h>

namespace tps {
namespace strings {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyTokens) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmptyTokens) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("Hello World 123"), "hello world 123");
}

TEST(StringUtilTest, StartsEndsContains) {
  EXPECT_TRUE(StartsWith("prefix-rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
  EXPECT_TRUE(Contains("haystack", "stack"));
  EXPECT_FALSE(Contains("haystack", "needle"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  padded \t\n"), "padded");
  EXPECT_EQ(Trim("nothing"), "nothing");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, FormatBehavesLikePrintf) {
  EXPECT_EQ(Format("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(Format("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(Format("%.2f", 3.14159), "3.14");
}

TEST(StringUtilTest, FormatLongStringsAllocateCorrectly) {
  const std::string big(500, 'x');
  EXPECT_EQ(Format("%s!", big.c_str()), big + "!");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(2.5, 0), "2");  // Round-half-to-even via printf.
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace strings
}  // namespace tps
