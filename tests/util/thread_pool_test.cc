#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.h"
#include "util/status.h"

namespace tps {
namespace {

TEST(ThreadPoolTest, SpawnsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCountToOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-4);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, SubmitRunsTasksAndWaitBlocksUntilDone) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // Destructor joins after the queue drains.
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWritesIndexOrderedSlots) {
  // The determinism contract: each task writes slot i; the reduced result
  // is identical for any thread count.
  std::vector<double> expected(257);
  for (size_t i = 0; i < expected.size(); ++i) {
    expected[i] = static_cast<double>(i) * 1.25 + 0.5;
  }
  for (int threads : {1, 2, 7, 2 * ThreadPool::DefaultThreads()}) {
    ThreadPool pool(threads);
    std::vector<double> slots(expected.size(), 0.0);
    pool.ParallelFor(slots.size(), [&](size_t i) {
      slots[i] = static_cast<double>(i) * 1.25 + 0.5;
    });
    EXPECT_EQ(slots, expected) << threads << " threads";
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool(4);
  bool touched = false;
  pool.ParallelFor(0, [&](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ParallelForSingleItem) {
  ThreadPool pool(8);
  int value = 0;
  pool.ParallelFor(1, [&](size_t i) { value = static_cast<int>(i) + 41; });
  EXPECT_EQ(value, 41);
}

TEST(ThreadPoolTest, OversubscriptionManyMoreThreadsThanWork) {
  // 4x the hardware with 3 items: the pool must neither deadlock nor drop
  // or duplicate work.
  ThreadPool pool(4 * ThreadPool::DefaultThreads());
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, OversubscriptionManyTinyTasksStress) {
  ThreadPool pool(2 * ThreadPool::DefaultThreads());
  std::atomic<int64_t> sum{0};
  constexpr size_t kN = 20000;
  pool.ParallelFor(kN, [&](size_t i) {
    sum.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<int64_t>(kN) * (kN - 1) / 2);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyParallelFors) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> slots(17, -1);
    pool.ParallelFor(slots.size(),
                     [&](size_t i) { slots[i] = static_cast<int>(i); });
    std::vector<int> expected(17);
    std::iota(expected.begin(), expected.end(), 0);
    ASSERT_EQ(slots, expected) << "round " << round;
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(
                   100,
                   [](size_t i) {
                     if (i == 31) throw std::runtime_error("task 31 failed");
                   }),
               std::runtime_error);
  // The pool survives the failure and keeps working.
  std::atomic<int> counter{0};
  pool.ParallelFor(10, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ParallelForRethrowsSmallestFailingIndexDeterministically) {
  // All indices run even after a failure, so the propagated exception is
  // always the one from the smallest failing index — for every thread
  // count and schedule.
  for (int threads : {1, 2, 7, 2 * ThreadPool::DefaultThreads()}) {
    ThreadPool pool(threads);
    for (int round = 0; round < 5; ++round) {
      try {
        pool.ParallelFor(200, [](size_t i) {
          if (i % 50 == 17) {  // Fails at 17, 67, 117, 167.
            throw std::runtime_error("fail@" + std::to_string(i));
          }
        });
        FAIL() << "expected an exception";
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "fail@17")
            << threads << " threads, round " << round;
      }
    }
  }
}

TEST(ThreadPoolTest, SubmitExceptionSurfacesFromWait) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::logic_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::logic_error);
  // The error is cleared once rethrown.
  pool.Wait();
}

TEST(ThreadPoolTest, ConcurrentParallelForsFromMultipleSubmitters) {
  // Two caller threads sharing one pool must not corrupt each other's
  // per-call state.
  ThreadPool pool(4);
  std::vector<int> a(500, -1), b(500, -1);
  std::thread other([&] {
    ThreadPool inner(2);
    inner.ParallelFor(b.size(),
                      [&](size_t i) { b[i] = static_cast<int>(i) * 2; });
  });
  pool.ParallelFor(a.size(), [&](size_t i) { a[i] = static_cast<int>(i); });
  other.join();
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], static_cast<int>(i));
    ASSERT_EQ(b[i], static_cast<int>(i) * 2);
  }
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, ClampThreads) {
  EXPECT_EQ(ThreadPool::ClampThreads(8, 3), 3);   // More threads than work.
  EXPECT_EQ(ThreadPool::ClampThreads(2, 100), 2); // More work than threads.
  EXPECT_EQ(ThreadPool::ClampThreads(4, 4), 4);
  EXPECT_EQ(ThreadPool::ClampThreads(0, 10), 1);  // Floor at one worker.
  EXPECT_EQ(ThreadPool::ClampThreads(-3, 10), 1);
  EXPECT_EQ(ThreadPool::ClampThreads(5, 0), 1);   // Empty grid still valid.
}

TEST(StatusParallelForTest, NullPoolRunsSerially) {
  std::vector<int> slots(20, -1);
  const Status status =
      StatusParallelFor(nullptr, slots.size(), [&](size_t i) {
        slots[i] = static_cast<int>(i);
        return Status::OK();
      });
  EXPECT_TRUE(status.ok());
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i));
  }
}

TEST(StatusParallelForTest, ReturnsFirstErrorInIndexOrder) {
  // Serial and parallel must report the *same* failure: the non-OK status
  // with the smallest index, regardless of which task finishes first.
  const auto fn = [](size_t i) -> Status {
    if (i == 13) return Status::InvalidArgument("bad 13");
    if (i == 7) return Status::Internal("bad 7");
    return Status::OK();
  };
  const Status serial = StatusParallelFor(nullptr, 64, fn);
  EXPECT_TRUE(serial.IsInternal());
  EXPECT_EQ(serial.message(), "bad 7");
  for (int threads : {2, 7}) {
    ThreadPool pool(threads);
    const Status parallel = StatusParallelFor(&pool, 64, fn);
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

TEST(StatusParallelForTest, EmptyRangeIsOk) {
  ThreadPool pool(2);
  EXPECT_TRUE(StatusParallelFor(&pool, 0, [](size_t) {
                return Status::Internal("never called");
              }).ok());
}

}  // namespace
}  // namespace tps
