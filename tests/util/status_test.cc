#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace tps {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("bad").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::InvalidArgument("details here");
  EXPECT_EQ(s.ToString(), "InvalidArgument: details here");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status s = Status::Internal("boom");
  Status t = std::move(s);
  EXPECT_TRUE(t.IsInternal());
  EXPECT_TRUE(s.ok());  // NOLINT(bugprone-use-after-move): documented.
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  TPS_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagatesErrors) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_TRUE(UsesReturnNotOk(-1).IsInvalidArgument());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nothing");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.ValueOr(-1), -1);
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v.ValueOr("fallback"), "hello");
}

TEST(StatusOrTest, OkStatusWithoutValueBecomesInternalError) {
  StatusOr<int> v = Status::OK();
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInternal());
}

TEST(StatusOrTest, MoveValueOut) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  TPS_ASSIGN_OR_RETURN(int half, Half(x));
  TPS_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(StatusOrTest, AssignOrReturnMacroChains) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd.
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

}  // namespace
}  // namespace tps
