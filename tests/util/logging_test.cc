#include "util/logging.h"

#include <sstream>

#include <gtest/gtest.h>

namespace tps {
namespace {

/// Captures std::cerr for the scope of one test.
class CerrCapture {
 public:
  CerrCapture() : old_buffer_(std::cerr.rdbuf(captured_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_buffer_); }
  std::string text() const { return captured_.str(); }

 private:
  std::ostringstream captured_;
  std::streambuf* old_buffer_;
};

class LoggingTest : public testing::Test {
 protected:
  void SetUp() override { SetLogLevel(LogLevel::kInfo); }
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, EmitsAtOrAboveThreshold) {
  CerrCapture capture;
  TPS_LOG(Info) << "visible info";
  TPS_LOG(Warning) << "visible warning";
  const std::string out = capture.text();
  EXPECT_NE(out.find("visible info"), std::string::npos);
  EXPECT_NE(out.find("visible warning"), std::string::npos);
  EXPECT_NE(out.find("[INFO"), std::string::npos);
  EXPECT_NE(out.find("[WARN"), std::string::npos);
}

TEST_F(LoggingTest, SuppressesBelowThreshold) {
  CerrCapture capture;
  TPS_LOG(Debug) << "hidden debug";
  EXPECT_EQ(capture.text().find("hidden debug"), std::string::npos);
  SetLogLevel(LogLevel::kDebug);
  TPS_LOG(Debug) << "now visible";
  EXPECT_NE(capture.text().find("now visible"), std::string::npos);
}

TEST_F(LoggingTest, ErrorLevelFiltersInfo) {
  SetLogLevel(LogLevel::kError);
  CerrCapture capture;
  TPS_LOG(Info) << "quiet";
  TPS_LOG(Error) << "loud";
  const std::string out = capture.text();
  EXPECT_EQ(out.find("quiet"), std::string::npos);
  EXPECT_NE(out.find("loud"), std::string::npos);
}

TEST_F(LoggingTest, MessageIncludesBasenameNotFullPath) {
  CerrCapture capture;
  TPS_LOG(Info) << "where am I";
  const std::string out = capture.text();
  EXPECT_NE(out.find("logging_test.cc:"), std::string::npos);
  EXPECT_EQ(out.find("/tests/"), std::string::npos);
}

TEST_F(LoggingTest, GetLogLevelReflectsSetting) {
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST(CheckTest, PassingCheckIsSilentAndFatalAborts) {
  TPS_CHECK(1 + 1 == 2);  // Must not abort.
  EXPECT_DEATH({ TPS_CHECK(1 + 1 == 3); }, "Check failed");
  EXPECT_DEATH({ TPS_CHECK_OK(Status::Internal("boom")); }, "boom");
  TPS_CHECK_OK(Status::OK());  // Must not abort.
}

}  // namespace
}  // namespace tps
