#include "util/metrics.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/json.h"

namespace tps {
namespace {

TEST(CounterTest, IncrementsAndReads) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test.count");
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same instrument.
  EXPECT_EQ(&registry.counter("test.count"), &c);
}

TEST(GaugeTest, SetAndSetMax) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("test.depth");
  g.Set(3.0);
  g.SetMax(3.0);
  g.Set(1.0);
  g.SetMax(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  EXPECT_DOUBLE_EQ(g.max_value(), 3.0);
}

TEST(HistogramTest, BucketsCountSumMinMax) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.lat", {1.0, 10.0, 100.0});
  h.Record(0.5);
  h.Record(5.0);
  h.Record(50.0);
  h.Record(500.0);  // Overflow bucket.
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
}

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.empty");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(DisabledRegistryTest, EveryRecordingIsANoOp) {
  MetricsRegistry registry(/*enabled=*/false);
  EXPECT_FALSE(registry.enabled());
  Counter& c = registry.counter("noop.count");
  c.Increment(100);
  EXPECT_EQ(c.value(), 0u);
  Gauge& g = registry.gauge("noop.gauge");
  g.Set(7.0);
  g.SetMax(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.max_value(), 0.0);
  Histogram& h = registry.histogram("noop.hist");
  h.Record(3.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(ScopedLatencyTimerTest, RecordsOnDestructionAndNullIsSafe) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("timer.us");
  {
    ScopedLatencyTimer timer(&h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 0.0);
  {
    ScopedLatencyTimer null_timer(nullptr);  // Must not crash.
  }
}

TEST(MetricsRegistryTest, ConcurrentRecordingIsExact) {
  MetricsRegistry registry;
  Counter& c = registry.counter("mt.count");
  Histogram& h = registry.histogram("mt.hist", {1e9});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        h.Record(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.bucket_count(0), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, ToJsonIsValidAndSorted) {
  MetricsRegistry registry;
  registry.counter("b.count").Increment(2);
  registry.counter("a.count").Increment(1);
  registry.gauge("g.depth").Set(4.0);
  registry.histogram("h.lat", {10.0}).Record(3.0);
  auto parsed = json::Parse(registry.ToJson());
  ASSERT_TRUE(parsed.ok());
  const json::Value* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->entries().size(), 2u);
  EXPECT_EQ(counters->entries()[0].first, "a.count");
  EXPECT_EQ(counters->entries()[1].first, "b.count");
  const json::Value* hists = parsed->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* h = hists->Find("h.lat");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->Find("count")->number(), 1.0);
}

TEST(MetricsRegistryTest, ClearDropsInstruments) {
  MetricsRegistry registry;
  registry.counter("x.count").Increment();
  registry.Clear();
  EXPECT_EQ(registry.counter("x.count").value(), 0u);
}

TEST(MetricsRegistryTest, DefaultIsEnabledSingleton) {
  ASSERT_NE(MetricsRegistry::Default(), nullptr);
  EXPECT_TRUE(MetricsRegistry::Default()->enabled());
  EXPECT_EQ(MetricsRegistry::Default(), MetricsRegistry::Default());
}

}  // namespace
}  // namespace tps
