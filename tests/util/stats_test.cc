#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tps {
namespace stats {
namespace {

TEST(StatsTest, SumMeanOfKnownValues) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Sum(v), 10.0);
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
}

TEST(StatsTest, EmptyInputsReturnZero) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(Sum(empty), 0.0);
  EXPECT_DOUBLE_EQ(Mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(Variance(empty), 0.0);
  EXPECT_DOUBLE_EQ(Min(empty), 0.0);
  EXPECT_DOUBLE_EQ(Max(empty), 0.0);
  EXPECT_DOUBLE_EQ(Median(empty), 0.0);
  EXPECT_EQ(ArgMax(empty), 0u);
}

TEST(StatsTest, VarianceAndStdDev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);  // Classic example.
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);
}

TEST(StatsTest, MinMaxArg) {
  const std::vector<double> v = {3.0, 1.0, 4.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(Min(v), 1.0);
  EXPECT_DOUBLE_EQ(Max(v), 5.0);
  EXPECT_EQ(ArgMax(v), 4u);
  EXPECT_EQ(ArgMin(v), 1u);  // First of the ties.
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7.0}), 7.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 12.5), 15.0);
}

TEST(StatsTest, PercentileClampsOutOfRangeP) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, -5), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 150), 2.0);
}

// Pins the boundary behavior the serving benches rely on (they report
// p50/p99 through this function — a truncating nearest-rank copy once
// lived in bench_serve_throughput and disagreed with these values).
TEST(StatsTest, PercentileSingletonIsThatValueAtEveryP) {
  const std::vector<double> v = {42.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 42.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 42.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 99), 42.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 42.0);
}

TEST(StatsTest, PercentileSortsItsInput) {
  // Callers pass unsorted samples; Percentile must not require pre-sorting.
  const std::vector<double> v = {50.0, 10.0, 40.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 50.0);
}

TEST(StatsTest, PercentileP99InterpolatesNearTheTail) {
  // 101 evenly spaced samples 0..100: p99 falls exactly on sample 99; with
  // 11 samples 0..10, p99 interpolates between the last two.
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(Percentile(v, 99), 99.0);
  std::vector<double> small;
  for (int i = 0; i <= 10; ++i) small.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(Percentile(small, 99), 9.9);
}

TEST(StatsTest, PercentileEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  const std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonZeroVarianceIsZero) {
  const std::vector<double> x = {1, 1, 1};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(StatsTest, PearsonSizeMismatchIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2}, {1, 2, 3}), 0.0);
}

TEST(StatsTest, SpearmanIsRankBased) {
  // Monotone but nonlinear relationship: Spearman 1, Pearson < 1.
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y), 1.0);
}

TEST(StatsTest, RanksAverageTies) {
  const std::vector<double> v = {10.0, 20.0, 20.0, 30.0};
  const std::vector<double> ranks = Ranks(v);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(StatsTest, ArgSortDescendingStableOnTies) {
  const std::vector<double> v = {1.0, 3.0, 3.0, 2.0};
  const std::vector<size_t> order = ArgSortDescending(v);
  EXPECT_EQ(order, (std::vector<size_t>{1, 2, 3, 0}));
}

TEST(StatsTest, ArgSortAscending) {
  const std::vector<double> v = {5.0, -1.0, 3.0};
  EXPECT_EQ(ArgSortAscending(v), (std::vector<size_t>{1, 2, 0}));
}

TEST(StatsTest, Clamp) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

}  // namespace
}  // namespace stats
}  // namespace tps
