// ThreadPool stress suite: many concurrent external submitters plus nested
// ParallelFor issued from pool threads, with the pool's own observability
// counters audited for consistency. Three things are on trial:
//
//  1. Liveness — none of the shapes below may deadlock (the nested
//     ParallelFor contract: callers wait on index completion, never on
//     helper scheduling).
//  2. Correctness — every submitted task runs exactly once; every
//     ParallelFor index is computed exactly once into its own slot.
//  3. Telemetry — `threadpool.tasks_submitted`, `threadpool.tasks_completed`
//     and the `threadpool.task_latency_us` histogram agree with each other
//     and with the ground-truth task count.
//
// Pool instruments live in MetricsRegistry::Default() and are shared by
// every pool in the process, so all assertions are on *deltas* across the
// test body, taken after the pool is destroyed (destruction drains the
// queue). Run under TSan via the `parallel` ctest label.

#include <atomic>
#include <cstddef>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/metrics.h"
#include "util/thread_pool.h"

namespace tps {
namespace {

struct PoolCounters {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t latency_count = 0;

  static PoolCounters Snapshot() {
    MetricsRegistry* registry = MetricsRegistry::Default();
    return {registry->counter("threadpool.tasks_submitted").value(),
            registry->counter("threadpool.tasks_completed").value(),
            registry->histogram("threadpool.task_latency_us").count()};
  }
};

TEST(ThreadPoolStressTest, ManyConcurrentSubmitters) {
  constexpr int kSubmitters = 6;
  constexpr int kTasksPerSubmitter = 250;
  const PoolCounters before = PoolCounters::Snapshot();
  std::atomic<int> executed{0};
  {
    ThreadPool pool(4);
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&pool, &executed] {
        for (int t = 0; t < kTasksPerSubmitter; ++t) {
          pool.Submit(
              [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
    pool.Wait();
  }
  const PoolCounters after = PoolCounters::Snapshot();

  constexpr uint64_t kTotal = kSubmitters * kTasksPerSubmitter;
  EXPECT_EQ(executed.load(), static_cast<int>(kTotal));
  // Exactly our tasks, each counted once, each latency-timed once.
  EXPECT_EQ(after.submitted - before.submitted, kTotal);
  EXPECT_EQ(after.completed - before.completed, kTotal);
  EXPECT_EQ(after.latency_count - before.latency_count, kTotal);
}

TEST(ThreadPoolStressTest, NestedParallelForFromPoolThreads) {
  // Outer ParallelFor whose body runs another ParallelFor on the SAME pool
  // — the shape the selection pipeline produces when the performance-matrix
  // build fans out per-(model, benchmark) and each cell fans out again.
  // Helpers for the inner calls execute on already-busy workers, so this
  // deadlocks unless nested calls can degrade to a serial drain.
  constexpr size_t kOuter = 12;
  constexpr size_t kInner = 24;
  ThreadPool pool(3);
  std::vector<std::vector<size_t>> cells(kOuter,
                                         std::vector<size_t>(kInner, 0));
  pool.ParallelFor(kOuter, [&pool, &cells](size_t i) {
    pool.ParallelFor(kInner, [&cells, i](size_t j) {
      cells[i][j] = i * kInner + j + 1;
    });
  });
  for (size_t i = 0; i < kOuter; ++i) {
    for (size_t j = 0; j < kInner; ++j) {
      EXPECT_EQ(cells[i][j], i * kInner + j + 1);
    }
  }
}

TEST(ThreadPoolStressTest, TriplyNestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<size_t> touched{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) {
      pool.ParallelFor(4,
                       [&](size_t) { touched.fetch_add(1); });
    });
  });
  EXPECT_EQ(touched.load(), 4u * 4u * 4u);
}

TEST(ThreadPoolStressTest, NestedParallelForFromSubmittedTasks) {
  // Plain Submit()ed tasks that each launch a ParallelFor: every worker
  // can be inside a nested call simultaneously.
  constexpr int kTasks = 16;
  constexpr size_t kRange = 32;
  ThreadPool pool(4);
  std::vector<std::vector<int>> slots(kTasks, std::vector<int>(kRange, 0));
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([&pool, &slots, t] {
      pool.ParallelFor(kRange,
                       [&slots, t](size_t i) { slots[t][i] = t + 1; });
    });
  }
  pool.Wait();
  for (int t = 0; t < kTasks; ++t) {
    const long expected = static_cast<long>(kRange) * (t + 1);
    EXPECT_EQ(std::accumulate(slots[t].begin(), slots[t].end(), 0L),
              expected);
  }
}

TEST(ThreadPoolStressTest, MixedLoadTelemetryStaysConsistent) {
  // External submitters racing against nested ParallelFor traffic. The
  // exact helper-task count is scheduler-dependent, so the invariant under
  // audit is internal consistency: once the pool is destroyed (queue
  // drained, workers joined), submitted == completed == latency samples,
  // and the direct-task ground truth is covered.
  constexpr int kSubmitters = 4;
  constexpr int kDirectTasks = 100;
  const PoolCounters before = PoolCounters::Snapshot();
  std::atomic<int> direct_runs{0};
  std::atomic<size_t> indices_run{0};
  {
    ThreadPool pool(4);
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&] {
        for (int t = 0; t < kDirectTasks; ++t) {
          pool.Submit([&] { direct_runs.fetch_add(1); });
        }
        pool.ParallelFor(64, [&](size_t) { indices_run.fetch_add(1); });
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
    pool.Wait();
  }
  const PoolCounters after = PoolCounters::Snapshot();

  EXPECT_EQ(direct_runs.load(), kSubmitters * kDirectTasks);
  EXPECT_EQ(indices_run.load(), static_cast<size_t>(kSubmitters) * 64u);
  const uint64_t submitted = after.submitted - before.submitted;
  const uint64_t completed = after.completed - before.completed;
  const uint64_t timed = after.latency_count - before.latency_count;
  EXPECT_EQ(submitted, completed);
  EXPECT_EQ(submitted, timed);
  EXPECT_GE(submitted,
            static_cast<uint64_t>(kSubmitters) * kDirectTasks);
  // Peak queue depth was observed (gauge max is monotone process-wide).
  EXPECT_GT(MetricsRegistry::Default()
                ->gauge("threadpool.queue_depth")
                .max_value(),
            0.0);
}

TEST(ThreadPoolStressTest, WaitIsReusableUnderChurn) {
  // Submit / Wait cycles interleaved with nested fan-out: Wait must be a
  // clean barrier every round, not just once.
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    for (int t = 0; t < 10; ++t) {
      pool.Submit([&] { total.fetch_add(1); });
    }
    pool.ParallelFor(10, [&](size_t) { total.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(total.load(), (round + 1) * 20);
  }
}

}  // namespace
}  // namespace tps
