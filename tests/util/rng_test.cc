#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace tps {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.5, 4.0);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 4.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[rng.UniformInt(uint64_t{5})];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 450);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-3}, int64_t{3});
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(14);
  EXPECT_EQ(rng.UniformInt(int64_t{5}, int64_t{5}), 5);
}

TEST(RngTest, NormalHasUnitMoments) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, NormalScalesMeanAndStddev) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0], 2000, 250);
  EXPECT_NEAR(counts[1], 6000, 350);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3], 12000, 400);
}

TEST(RngTest, CategoricalAllZeroWeightsIsUniform) {
  Rng rng(31);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 9000; ++i) ++counts[rng.Categorical(weights)];
  for (int c : counts) EXPECT_NEAR(c, 3000, 300);
}

TEST(RngTest, CategoricalIgnoresNegativeWeights) {
  Rng rng(32);
  std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Categorical(weights), 1u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(41);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(43);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace tps
