#include "util/flags.h"

#include <gtest/gtest.h>

namespace tps {
namespace {

TEST(FlagsTest, ParsesEqualsForm) {
  auto flags = *FlagParser::Parse({"--name=value", "--num=42"});
  EXPECT_TRUE(flags.Has("name"));
  EXPECT_EQ(flags.GetString("name"), "value");
  EXPECT_EQ(*flags.GetInt("num", 0), 42);
}

TEST(FlagsTest, ParsesSpaceForm) {
  auto flags = *FlagParser::Parse({"--name", "value", "--other", "x"});
  EXPECT_EQ(flags.GetString("name"), "value");
  EXPECT_EQ(flags.GetString("other"), "x");
  EXPECT_TRUE(flags.positionals().empty());
}

TEST(FlagsTest, BareFlagIsBooleanTrue) {
  auto flags = *FlagParser::Parse({"--verbose", "--count=3"});
  EXPECT_TRUE(*flags.GetBool("verbose", false));
  EXPECT_FALSE(*flags.GetBool("absent", false));
  EXPECT_TRUE(*flags.GetBool("absent", true));
}

TEST(FlagsTest, BoolValueForms) {
  auto flags = *FlagParser::Parse(
      {"--a=true", "--b=false", "--c=1", "--d=no", "--e=garbage"});
  EXPECT_TRUE(*flags.GetBool("a", false));
  EXPECT_FALSE(*flags.GetBool("b", true));
  EXPECT_TRUE(*flags.GetBool("c", false));
  EXPECT_FALSE(*flags.GetBool("d", true));
  EXPECT_TRUE(flags.GetBool("e", false).status().IsInvalidArgument());
}

TEST(FlagsTest, PositionalsInterleaved) {
  auto flags = *FlagParser::Parse({"select", "--k=5", "extra"});
  EXPECT_EQ(flags.positionals(),
            (std::vector<std::string>{"select", "extra"}));
  EXPECT_EQ(*flags.GetInt("k", 0), 5);
}

TEST(FlagsTest, DoubleDashEndsFlagParsing) {
  auto flags = *FlagParser::Parse({"--a=1", "--", "--b=2"});
  EXPECT_TRUE(flags.Has("a"));
  EXPECT_FALSE(flags.Has("b"));
  EXPECT_EQ(flags.positionals(), (std::vector<std::string>{"--b=2"}));
}

TEST(FlagsTest, NumericValidation) {
  auto flags = *FlagParser::Parse({"--n=abc", "--x=1.5", "--y=2z"});
  EXPECT_TRUE(flags.GetInt("n", 0).status().IsInvalidArgument());
  EXPECT_DOUBLE_EQ(*flags.GetDouble("x", 0.0), 1.5);
  EXPECT_TRUE(flags.GetDouble("y", 0.0).status().IsInvalidArgument());
  EXPECT_EQ(*flags.GetInt("absent", -7), -7);
  EXPECT_DOUBLE_EQ(*flags.GetDouble("absent", 2.5), 2.5);
}

TEST(FlagsTest, ListFlag) {
  auto flags = *FlagParser::Parse({"--proxies=leep,nce,knn"});
  EXPECT_EQ(flags.GetList("proxies"),
            (std::vector<std::string>{"leep", "nce", "knn"}));
  EXPECT_TRUE(flags.GetList("absent").empty());
}

TEST(FlagsTest, MalformedFlagsRejected) {
  EXPECT_TRUE(FlagParser::Parse({"--=x"}).status().IsInvalidArgument());
  EXPECT_TRUE(FlagParser::Parse({"--name="}).status().IsInvalidArgument());
}

TEST(FlagsTest, ArgcArgvEntryPointSkipsProgramName) {
  const char* argv[] = {"program", "cmd", "--k=3"};
  auto flags = *FlagParser::Parse(3, argv);
  EXPECT_EQ(flags.positionals(), (std::vector<std::string>{"cmd"}));
  EXPECT_EQ(*flags.GetInt("k", 0), 3);
}

TEST(FlagsTest, LastOccurrenceWins) {
  auto flags = *FlagParser::Parse({"--k=1", "--k=2"});
  EXPECT_EQ(*flags.GetInt("k", 0), 2);
}

}  // namespace
}  // namespace tps
