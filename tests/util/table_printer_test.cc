#include "util/table_printer.h"

#include <fstream>
#include <iterator>

#include <gtest/gtest.h>

#include "util/csv_writer.h"
#include "util/string_util.h"

namespace tps {
namespace {

TEST(TablePrinterTest, AlignsColumnsToWidestCell) {
  TablePrinter t({"name", "v"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  const std::string out = t.ToString();
  // All lines have equal width.
  const auto lines = strings::Split(out, '\n');
  ASSERT_GE(lines.size(), 5u);
  const size_t width = lines[0].size();
  for (const auto& line : lines) {
    if (!line.empty()) {
      EXPECT_EQ(line.size(), width) << line;
    }
  }
  EXPECT_TRUE(strings::Contains(out, "long-name"));
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  const std::string out = t.ToString();
  EXPECT_TRUE(strings::Contains(out, "| 1 |"));
}

TEST(TablePrinterTest, LongRowsExtendColumnCount) {
  TablePrinter t({"a"});
  t.AddRow({"1", "2", "3"});
  EXPECT_TRUE(strings::Contains(t.ToString(), "3"));
}

TEST(TablePrinterTest, SeparatorEmitsRule) {
  TablePrinter t({"h"});
  t.AddRow({"x"});
  t.AddSeparator();
  t.AddRow({"y"});
  const auto lines = strings::Split(t.ToString(), '\n');
  int rules = 0;
  for (const auto& line : lines) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4);  // Top, under-header, explicit, bottom.
}

TEST(TablePrinterTest, CountsRows) {
  TablePrinter t({"h"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"x"});
  t.AddRow({"y"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(CsvWriterTest, BasicRows) {
  CsvWriter w({"a", "b"});
  w.AddRow({"1", "2"});
  EXPECT_EQ(w.ToString(), "a,b\n1,2\n");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter w({"x"});
  w.AddRow({"has,comma"});
  w.AddRow({"has\"quote"});
  w.AddRow({"has\nnewline"});
  const std::string out = w.ToString();
  EXPECT_TRUE(strings::Contains(out, "\"has,comma\""));
  EXPECT_TRUE(strings::Contains(out, "\"has\"\"quote\""));
  EXPECT_TRUE(strings::Contains(out, "\"has\nnewline\""));
}

TEST(CsvWriterTest, WriteToFileRoundTrips) {
  CsvWriter w({"k", "v"});
  w.AddRow({"alpha", "1"});
  const std::string path = testing::TempDir() + "/tps_csv_test.csv";
  ASSERT_TRUE(w.WriteToFile(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "k,v\nalpha,1\n");
}

TEST(CsvWriterTest, WriteToBadPathFails) {
  CsvWriter w({"x"});
  EXPECT_TRUE(w.WriteToFile("/nonexistent-dir/foo.csv").IsIOError());
}

}  // namespace
}  // namespace tps
