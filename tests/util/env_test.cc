#include "util/env.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "util/fault_env.h"

namespace tps {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string ReadAll(Env* env, const std::string& path) {
  auto size = env->FileSize(path);
  EXPECT_TRUE(size.ok()) << size.status();
  auto file = env->NewSequentialFile(path);
  EXPECT_TRUE(file.ok()) << file.status();
  std::string bytes(static_cast<size_t>(*size), '\0');
  auto got = ReadFully(file->get(), bytes.size(), bytes.data());
  EXPECT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, bytes.size());
  return bytes;
}

TEST(PosixEnvTest, AppendableFileWritesAndAppends) {
  Env* env = Env::Default();
  const std::string path = TempPath("env_append.bin");
  {
    auto file = std::move(env->NewAppendableFile(path)).value();
    ASSERT_TRUE(file->Append("hello ").ok());
    ASSERT_TRUE(file->Append("world").ok());
    ASSERT_TRUE(file->Flush().ok());
  }
  // A second appendable handle continues at the end.
  {
    auto file = std::move(env->NewAppendableFile(path)).value();
    ASSERT_TRUE(file->Append("!").ok());
    ASSERT_TRUE(file->Flush().ok());
  }
  EXPECT_EQ(ReadAll(env, path), "hello world!");
  EXPECT_EQ(*env->FileSize(path), 12u);
  EXPECT_TRUE(env->FileExists(path));
}

TEST(PosixEnvTest, TruncatedFileDiscardsOldContents) {
  Env* env = Env::Default();
  const std::string path = TempPath("env_trunc.bin");
  {
    auto file = std::move(env->NewAppendableFile(path)).value();
    ASSERT_TRUE(file->Append("old contents").ok());
    ASSERT_TRUE(file->Flush().ok());
  }
  {
    auto file = std::move(env->NewTruncatedFile(path)).value();
    ASSERT_TRUE(file->Append("new").ok());
    ASSERT_TRUE(file->Flush().ok());
  }
  EXPECT_EQ(ReadAll(env, path), "new");
}

TEST(PosixEnvTest, TruncateFileShrinksToExactSize) {
  Env* env = Env::Default();
  const std::string path = TempPath("env_shrink.bin");
  {
    auto file = std::move(env->NewAppendableFile(path)).value();
    ASSERT_TRUE(file->Append("0123456789").ok());
    ASSERT_TRUE(file->Flush().ok());
  }
  ASSERT_TRUE(env->TruncateFile(path, 4).ok());
  EXPECT_EQ(ReadAll(env, path), "0123");
  // Appending after a truncate lands at the new end.
  {
    auto file = std::move(env->NewAppendableFile(path)).value();
    ASSERT_TRUE(file->Append("X").ok());
    ASSERT_TRUE(file->Flush().ok());
  }
  EXPECT_EQ(ReadAll(env, path), "0123X");
}

TEST(PosixEnvTest, RenameReplacesTarget) {
  Env* env = Env::Default();
  const std::string from = TempPath("env_rename_from.bin");
  const std::string to = TempPath("env_rename_to.bin");
  for (const auto& [path, text] : {std::pair{from, "source"},
                                   std::pair{to, "target"}}) {
    auto file = std::move(env->NewTruncatedFile(path)).value();
    ASSERT_TRUE(file->Append(text).ok());
    ASSERT_TRUE(file->Flush().ok());
  }
  ASSERT_TRUE(env->RenameFile(from, to).ok());
  EXPECT_FALSE(env->FileExists(from));
  EXPECT_EQ(ReadAll(env, to), "source");
}

TEST(PosixEnvTest, RemoveFileDeletes) {
  Env* env = Env::Default();
  const std::string path = TempPath("env_remove.bin");
  {
    auto file = std::move(env->NewTruncatedFile(path)).value();
    ASSERT_TRUE(file->Append("x").ok());
  }
  ASSERT_TRUE(env->RemoveFile(path).ok());
  EXPECT_FALSE(env->FileExists(path));
  EXPECT_TRUE(env->RemoveFile(path).IsIOError());  // Already gone.
}

TEST(PosixEnvTest, MissingFileErrors) {
  Env* env = Env::Default();
  const std::string path = TempPath("env_missing.bin");
  EXPECT_FALSE(env->FileExists(path));
  EXPECT_TRUE(env->NewSequentialFile(path).status().IsIOError());
  EXPECT_TRUE(env->FileSize(path).status().IsIOError());
  EXPECT_TRUE(env->RenameFile(path, path + ".x").IsIOError());
}

TEST(FaultEnvTest, FailNthWriteLeavesNoBytes) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("fault_fail.bin");
  env.FailWrite(2);
  auto file = std::move(env.NewAppendableFile(path)).value();
  ASSERT_TRUE(file->Append("first").ok());
  ASSERT_TRUE(file->Flush().ok());
  Status failed = file->Append("second");
  EXPECT_TRUE(failed.IsIOError());
  EXPECT_EQ(ReadAll(&env, path), "first");
  EXPECT_EQ(env.writes_seen(), 2u);
  // Fault is one-shot: the 3rd write goes through.
  ASSERT_TRUE(file->Append("third").ok());
  ASSERT_TRUE(file->Flush().ok());
  EXPECT_EQ(ReadAll(&env, path), "firstthird");
}

TEST(FaultEnvTest, TornWriteKeepsExactPrefix) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("fault_tear.bin");
  env.TearWrite(1, 3);
  auto file = std::move(env.NewAppendableFile(path)).value();
  EXPECT_TRUE(file->Append("abcdefgh").IsIOError());
  EXPECT_EQ(ReadAll(&env, path), "abc");
}

TEST(FaultEnvTest, TornWriteCountsAcrossFiles) {
  FaultInjectingEnv env(Env::Default());
  const std::string a = TempPath("fault_multi_a.bin");
  const std::string b = TempPath("fault_multi_b.bin");
  env.TearWrite(3, 1);
  auto file_a = std::move(env.NewAppendableFile(a)).value();
  auto file_b = std::move(env.NewTruncatedFile(b)).value();
  ASSERT_TRUE(file_a->Append("one").ok());
  ASSERT_TRUE(file_b->Append("two").ok());
  ASSERT_TRUE(file_a->Flush().ok());
  ASSERT_TRUE(file_b->Flush().ok());
  EXPECT_TRUE(file_b->Append("XYZ").IsIOError());  // 3rd write overall.
  EXPECT_EQ(ReadAll(&env, a), "one");
  EXPECT_EQ(ReadAll(&env, b), "twoX");
}

TEST(FaultEnvTest, FailRenamesIsCountedAndExpires) {
  FaultInjectingEnv env(Env::Default());
  const std::string from = TempPath("fault_ren_from.bin");
  const std::string to = TempPath("fault_ren_to.bin");
  {
    auto file = std::move(env.NewTruncatedFile(from)).value();
    ASSERT_TRUE(file->Append("data").ok());
  }
  env.FailRenames(1);
  EXPECT_TRUE(env.RenameFile(from, to).IsIOError());
  EXPECT_TRUE(env.FileExists(from));  // Nothing moved.
  EXPECT_TRUE(env.RenameFile(from, to).ok());  // Second attempt passes.
  EXPECT_EQ(env.renames_seen(), 2u);
}

TEST(FaultEnvTest, ShortReadsAreLoopedOverByReadFully) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("fault_short_read.bin");
  {
    auto file = std::move(env.NewTruncatedFile(path)).value();
    ASSERT_TRUE(file->Append("0123456789").ok());
  }
  env.SetMaxReadChunk(3);
  auto file = std::move(env.NewSequentialFile(path)).value();
  char buffer[10];
  // A raw Read is capped at the chunk size...
  auto got = file->Read(10, buffer);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 3u);
  // ...but ReadFully keeps going until it has everything.
  auto rest = ReadFully(file.get(), 7, buffer + 3);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(*rest, 7u);
  EXPECT_EQ(std::string(buffer, 10), "0123456789");
}

TEST(FaultEnvTest, ResetDisarmsEverything) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("fault_reset.bin");
  env.FailWrite(1);
  env.FailRenames(5);
  env.SetMaxReadChunk(1);
  env.Reset();
  auto file = std::move(env.NewTruncatedFile(path)).value();
  EXPECT_TRUE(file->Append("fine").ok());
  EXPECT_EQ(env.writes_seen(), 1u);
}

}  // namespace
}  // namespace tps
