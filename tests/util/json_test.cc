#include "util/json.h"

#include <cmath>
#include <limits>
#include <string>

#include "gtest/gtest.h"

namespace tps {
namespace json {
namespace {

TEST(JsonValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_FALSE(Value::Bool(false).bool_value());
  EXPECT_DOUBLE_EQ(Value::Number(2.5).number(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Int(7).number(), 7.0);
  EXPECT_EQ(Value::String("hi").string(), "hi");
  EXPECT_TRUE(Value::Array().is_array());
  EXPECT_TRUE(Value::Object().is_object());
}

TEST(JsonValueTest, ObjectKeepsInsertionOrderAndOverwrites) {
  Value obj = Value::Object();
  obj.Set("z", Value::Int(1));
  obj.Set("a", Value::Int(2));
  obj.Set("z", Value::Int(3));  // Overwrite keeps the original position.
  ASSERT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj.entries()[0].first, "z");
  EXPECT_DOUBLE_EQ(obj.entries()[0].second.number(), 3.0);
  EXPECT_EQ(obj.entries()[1].first, "a");
  ASSERT_NE(obj.Find("a"), nullptr);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(JsonDumpTest, CompactForm) {
  Value root = Value::Object();
  root.Set("n", Value::Int(42));
  root.Set("s", Value::String("x"));
  Value arr = Value::Array();
  arr.Append(Value::Bool(true));
  arr.Append(Value::Null());
  root.Set("a", std::move(arr));
  EXPECT_EQ(root.Dump(), R"({"n":42,"s":"x","a":[true,null]})");
}

TEST(JsonDumpTest, IntegralDoublesPrintAsIntegers) {
  EXPECT_EQ(Value::Number(3.0).Dump(), "3");
  EXPECT_EQ(Value::Number(-17.0).Dump(), "-17");
  EXPECT_EQ(Value::Int(1234567890123).Dump(), "1234567890123");
}

TEST(JsonDumpTest, DoublesRoundTripLosslessly) {
  const double values[] = {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324,
                           -2.2250738585072014e-308,
                           std::numeric_limits<double>::max()};
  for (double v : values) {
    auto parsed = Parse(Value::Number(v).Dump());
    ASSERT_TRUE(parsed.ok()) << v;
    EXPECT_EQ(parsed->number(), v);  // Exact: %.17g is lossless.
  }
}

TEST(JsonDumpTest, NonFiniteNumbersDumpAsNull) {
  EXPECT_EQ(Value::Number(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(Value::Number(std::nan("")).Dump(), "null");
}

TEST(JsonDumpTest, StringEscapes) {
  EXPECT_EQ(Value::String("a\"b\\c\n\t\x01").Dump(),
            R"("a\"b\\c\n\t\u0001")");
  // Bytes >= 0x20 pass through verbatim (UTF-8 or not).
  EXPECT_EQ(Value::String("caf\xC3\xA9").Dump(), "\"caf\xC3\xA9\"");
}

TEST(JsonDumpTest, EqualValuesDumpIdenticalBytes) {
  Value a = Value::Object();
  a.Set("k", Value::Number(0.30000000000000004));
  Value b = Value::Object();
  b.Set("k", Value::Number(0.1 + 0.2));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Dump(2), b.Dump(2));
}

TEST(JsonParseTest, RoundTripsDocument) {
  const std::string doc =
      R"({"a":[1,2.5,"x",true,null],"b":{"nested":[[]]},"c":-0.125})";
  auto parsed = Parse(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Dump(), doc);
}

TEST(JsonParseTest, AcceptsEscapesAndUnicode) {
  auto parsed = Parse(R"("a\u0041\n\u00e9")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string(), "aA\n\xC3\xA9");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",        "{",        "[1,",      "\"unterminated", "{\"k\":}",
      "tru",     "01",       "1.",       "- 1",            "[1 2]",
      "{\"a\" 1}", "\"\\x\"", "\"\\u12\"", "nulll",        "1e",
      "{\"a\":1,}", "[,]",   "+1",       ".5",             "[1e+]",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(Parse(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonParseTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(Parse("{} x").ok());
  EXPECT_FALSE(Parse("1 2").ok());
  EXPECT_TRUE(Parse(" {} \n").ok());
}

TEST(JsonParseTest, DepthLimitBlocksDeepNesting) {
  std::string deep(kMaxParseDepth + 1, '[');
  deep += std::string(kMaxParseDepth + 1, ']');
  EXPECT_FALSE(Parse(deep).ok());
  std::string ok_depth(kMaxParseDepth - 1, '[');
  ok_depth += std::string(kMaxParseDepth - 1, ']');
  EXPECT_TRUE(Parse(ok_depth).ok());
}

TEST(JsonParseTest, RejectsNonFiniteLiterals) {
  EXPECT_FALSE(Parse("1e999").ok());
  EXPECT_FALSE(Parse("NaN").ok());
  EXPECT_FALSE(Parse("Infinity").ok());
}

TEST(JsonGetTest, FallibleAccessorsReturnStatus) {
  auto parsed = Parse(R"({"b":true,"n":1.5,"s":"v","a":[],"o":{}})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->GetBool("b").ok());
  EXPECT_TRUE(parsed->GetNumber("n").ok());
  EXPECT_TRUE(parsed->GetString("s").ok());
  EXPECT_TRUE(parsed->GetArray("a").ok());
  EXPECT_TRUE(parsed->GetObject("o").ok());
  // Missing key and wrong type both yield errors, never crashes.
  EXPECT_FALSE(parsed->GetBool("missing").ok());
  EXPECT_FALSE(parsed->GetNumber("s").ok());
  EXPECT_FALSE(parsed->GetArray("o").ok());
}

}  // namespace
}  // namespace json
}  // namespace tps
