#include "model/zoo_gen.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/performance_matrix.h"
#include "data/registry.h"
#include "model/zoo.h"
#include "sim/finetune_simulator.h"

namespace tps {
namespace {

void ExpectSpecsIdentical(const std::vector<ModelSpec>& a,
                          const std::vector<ModelSpec>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name) << i;
    EXPECT_EQ(a[i].domain, b[i].domain) << i;
    EXPECT_EQ(a[i].family, b[i].family) << i;
    EXPECT_EQ(a[i].scale_millions, b[i].scale_millions) << i;
    EXPECT_EQ(a[i].capability, b[i].capability) << i;
    EXPECT_EQ(a[i].pretrain_tags, b[i].pretrain_tags) << i;
    EXPECT_EQ(a[i].finetune_tags, b[i].finetune_tags) << i;
    EXPECT_EQ(a[i].finetune_strength, b[i].finetune_strength) << i;
    EXPECT_EQ(a[i].num_source_labels, b[i].num_source_labels) << i;
    EXPECT_EQ(a[i].description, b[i].description) << i;
  }
}

TEST(ZooGenTest, SameSpecIsBitIdentical) {
  ZooGenSpec spec;
  spec.num_models = 200;
  spec.seed = 99;
  auto first = GenerateZooSpecs(spec);
  auto second = GenerateZooSpecs(spec);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectSpecsIdentical(*first, *second);
}

TEST(ZooGenTest, SeedChangesTheZoo) {
  ZooGenSpec spec;
  spec.num_models = 100;
  spec.seed = 1;
  auto first = GenerateZooSpecs(spec);
  spec.seed = 2;
  auto second = GenerateZooSpecs(spec);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  bool any_difference = false;
  for (size_t i = 0; i < first->size() && !any_difference; ++i) {
    any_difference = (*first)[i].name != (*second)[i].name ||
                     (*first)[i].capability != (*second)[i].capability ||
                     (*first)[i].family != (*second)[i].family;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ZooGenTest, NamesCarryPrefixAndAreUnique) {
  ZooGenSpec spec;
  spec.num_models = 150;
  spec.name_prefix = "zg";
  auto specs = GenerateZooSpecs(spec);
  ASSERT_TRUE(specs.ok());
  EXPECT_EQ(specs->size(), 150u);
  std::set<std::string> names;
  for (const ModelSpec& m : *specs) {
    EXPECT_EQ(m.name.rfind("zg/", 0), 0u) << m.name;
    EXPECT_EQ(m.domain, TaskDomain::kNLP);
    names.insert(m.name);
  }
  EXPECT_EQ(names.size(), specs->size());  // No duplicate names.
}

TEST(ZooGenTest, LineagesShareFamilyAndSingletonsExist) {
  ZooGenSpec spec;
  spec.num_models = 240;
  spec.num_lineages = 12;
  spec.singleton_fraction = 0.1;
  auto specs = GenerateZooSpecs(spec);
  ASSERT_TRUE(specs.ok());
  // Lineage members share a family by construction, so the distinct
  // family count stays far below the model count.
  std::set<std::string> families;
  for (const ModelSpec& m : *specs) families.insert(m.family);
  EXPECT_LT(families.size(), specs->size() / 4);
}

TEST(ZooGenTest, RejectsInvalidSpecs) {
  ZooGenSpec spec;
  spec.num_models = 0;
  EXPECT_FALSE(GenerateZooSpecs(spec).ok());

  spec = ZooGenSpec();
  spec.capability_jitter = -0.1;
  EXPECT_FALSE(GenerateZooSpecs(spec).ok());

  spec = ZooGenSpec();
  spec.singleton_fraction = 1.5;
  EXPECT_FALSE(GenerateZooSpecs(spec).ok());

  spec = ZooGenSpec();
  spec.name_prefix = "";
  EXPECT_FALSE(GenerateZooSpecs(spec).ok());

  spec = ZooGenSpec();
  spec.num_models = 10;
  spec.num_lineages = 11;
  EXPECT_FALSE(GenerateZooSpecs(spec).ok());
}

// The determinism audit for `tps_cli zoo-gen --threads=N`: generation is
// serial by construction, and the only threaded stage downstream is the
// performance-matrix build — so same seed + any worker count must yield a
// bit-identical matrix. This is the regression test for the offline
// artifact path (`ctest -L parallel` routes it through the TSan sweep).
TEST(ZooGenTest, MatrixBuildIsThreadCountInvariant) {
  ZooGenSpec spec;
  spec.num_models = 80;
  spec.seed = 7;
  auto specs = GenerateZooSpecs(spec);
  ASSERT_TRUE(specs.ok());
  auto zoo = ModelZoo::Create(*specs);
  ASSERT_TRUE(zoo.ok()) << zoo.status().message();
  const DatasetRegistry registry = *DatasetRegistry::CreatePaperInventory();
  const auto benchmarks = registry.Benchmarks(TaskDomain::kNLP);
  const FineTuneSimulator simulator;
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);

  auto serial = PerformanceMatrix::Build(*zoo, benchmarks, simulator, hp);
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  for (int threads : {2, 4}) {
    auto parallel = PerformanceMatrix::BuildParallel(*zoo, benchmarks,
                                                     simulator, hp, threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status().message();
    EXPECT_EQ(parallel->ModelVectors(), serial->ModelVectors())
        << threads << " threads";
    EXPECT_EQ(parallel->ModelAverageAccuracies(),
              serial->ModelAverageAccuracies())
        << threads << " threads";
  }
}

}  // namespace
}  // namespace tps
