#include "model/paper_zoo.h"

#include <set>

#include <gtest/gtest.h>

#include "model/zoo.h"
#include "util/string_util.h"

namespace tps {
namespace {

TEST(PaperZooTest, NlpZooHas40UniqueValidModels) {
  const std::vector<ModelSpec> specs = NlpPaperZooSpecs();
  EXPECT_EQ(specs.size(), 40u);
  std::set<std::string> names;
  for (const ModelSpec& spec : specs) {
    EXPECT_EQ(spec.domain, TaskDomain::kNLP);
    EXPECT_GT(spec.capability, 0.0);
    EXPECT_LT(spec.capability, 1.0);
    EXPECT_GE(spec.num_source_labels, 2);
    EXPECT_FALSE(spec.pretrain_tags.empty()) << spec.name;
    names.insert(spec.name);
  }
  EXPECT_EQ(names.size(), 40u);
  auto zoo = ModelZoo::Create(specs);
  EXPECT_TRUE(zoo.ok()) << zoo.status().ToString();
}

TEST(PaperZooTest, CvZooHas30UniqueValidModels) {
  const std::vector<ModelSpec> specs = CvPaperZooSpecs();
  EXPECT_EQ(specs.size(), 30u);
  std::set<std::string> names;
  for (const ModelSpec& spec : specs) {
    EXPECT_EQ(spec.domain, TaskDomain::kCV);
    names.insert(spec.name);
  }
  EXPECT_EQ(names.size(), 30u);
  EXPECT_TRUE(ModelZoo::Create(specs).ok());
}

TEST(PaperZooTest, ContainsHeadlineModels) {
  auto zoo = *ModelZoo::Create(NlpPaperZooSpecs());
  EXPECT_TRUE(zoo.Find("bert-base-uncased").ok());
  EXPECT_TRUE(zoo.Find("roberta-base").ok());
  EXPECT_TRUE(zoo.Find("ishan/bert-base-uncased-mnli").ok());
  auto cv = *ModelZoo::Create(CvPaperZooSpecs());
  EXPECT_TRUE(cv.Find("google/vit-base-patch16-224").ok());
  EXPECT_TRUE(cv.Find("microsoft/beit-base-patch16-224").ok());
}

TEST(PaperZooTest, QqpLineageSharesTags) {
  const std::vector<ModelSpec> specs = NlpPaperZooSpecs();
  std::vector<const ModelSpec*> qqp;
  for (const ModelSpec& spec : specs) {
    if (strings::Contains(spec.name, "bert_ft_qqp") &&
        !strings::Contains(spec.name, "init")) {
      qqp.push_back(&spec);
    }
  }
  ASSERT_GE(qqp.size(), 4u);
  for (const ModelSpec* spec : qqp) {
    EXPECT_EQ(spec->finetune_tags, qqp[0]->finetune_tags) << spec->name;
  }
}

TEST(PaperZooTest, InitLineageIsWeakerThanTrainedLineage) {
  const std::vector<ModelSpec> specs = NlpPaperZooSpecs();
  double init_cap = 1.0, trained_cap = 0.0;
  for (const ModelSpec& spec : specs) {
    if (strings::Contains(spec.name, "init_bert_ft_qqp")) {
      init_cap = std::min(init_cap, spec.capability);
    }
    if (spec.name == "Jeevesh8/bert_ft_qqp-68") {
      trained_cap = spec.capability;
    }
  }
  EXPECT_LT(init_cap, trained_cap - 0.1);
}

TEST(SyntheticZooTest, GeneratesRequestedCountDeterministically) {
  const auto a = SyntheticZooSpecs(TaskDomain::kNLP, 50, 7);
  const auto b = SyntheticZooSpecs(TaskDomain::kNLP, 50, 7);
  const auto c = SyntheticZooSpecs(TaskDomain::kNLP, 50, 8);
  EXPECT_EQ(a.size(), 50u);
  ASSERT_EQ(b.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_DOUBLE_EQ(a[i].capability, b[i].capability);
  }
  bool any_differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].capability != c[i].capability || a[i].family != c[i].family) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(SyntheticZooTest, SpecsMaterialize) {
  for (TaskDomain domain : {TaskDomain::kNLP, TaskDomain::kCV}) {
    auto zoo = ModelZoo::Create(SyntheticZooSpecs(domain, 120, 3));
    ASSERT_TRUE(zoo.ok()) << zoo.status().ToString();
    EXPECT_EQ(zoo->size(), 120u);
  }
}

TEST(SyntheticZooTest, CapabilitiesSkewLow) {
  const auto specs = SyntheticZooSpecs(TaskDomain::kCV, 500, 21);
  int strong = 0;
  for (const ModelSpec& spec : specs) {
    ASSERT_GE(spec.capability, 0.3);
    ASSERT_LE(spec.capability, 0.9);
    if (spec.capability > 0.7) ++strong;
  }
  // The Fig. 1 shape: strong models are a minority.
  EXPECT_LT(strong, 200);
  EXPECT_GT(strong, 10);
}

}  // namespace
}  // namespace tps
