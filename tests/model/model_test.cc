#include "model/pretrained_model.h"

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "matrix/vector_ops.h"
#include "model/model_card.h"
#include "model/zoo.h"
#include "util/string_util.h"

namespace tps {
namespace {

ModelSpec ValidModelSpec(const std::string& name = "org/test-model") {
  ModelSpec spec;
  spec.name = name;
  spec.domain = TaskDomain::kNLP;
  spec.family = "bert";
  spec.capability = 0.6;
  spec.pretrain_tags = {"english", "books"};
  spec.finetune_tags = {"english", "nli"};
  spec.num_source_labels = 3;
  return spec;
}

DatasetSpec ValidDatasetSpec(const std::string& name = "test-target") {
  DatasetSpec spec;
  spec.name = name;
  spec.num_labels = 3;
  spec.tags = {"english", "nli"};
  spec.num_examples = 90;
  return spec;
}

TEST(PretrainedModelTest, CreateValidatesSpec) {
  ModelSpec spec = ValidModelSpec();
  spec.name = "";
  EXPECT_TRUE(PretrainedModel::Create(spec).status().IsInvalidArgument());

  spec = ValidModelSpec();
  spec.capability = 0.0;
  EXPECT_TRUE(PretrainedModel::Create(spec).status().IsInvalidArgument());
  spec.capability = 1.0;
  EXPECT_TRUE(PretrainedModel::Create(spec).status().IsInvalidArgument());

  spec = ValidModelSpec();
  spec.num_source_labels = 1;
  EXPECT_TRUE(PretrainedModel::Create(spec).status().IsInvalidArgument());

  spec = ValidModelSpec();
  spec.finetune_strength = -0.1;
  EXPECT_TRUE(PretrainedModel::Create(spec).status().IsInvalidArgument());
}

TEST(PretrainedModelTest, AffinityIsUnitNormAndDeterministic) {
  auto a = *PretrainedModel::Create(ValidModelSpec());
  auto b = *PretrainedModel::Create(ValidModelSpec());
  EXPECT_EQ(a.affinity(), b.affinity());
  EXPECT_NEAR(vec::Norm(a.affinity()), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.capability(), b.capability());
}

TEST(PretrainedModelTest, CapabilityJitterStaysNearSpec) {
  auto m = *PretrainedModel::Create(ValidModelSpec());
  EXPECT_NEAR(m.capability(), 0.6, 0.1);
}

TEST(PretrainedModelTest, SameLineageModelsHaveSimilarAffinity) {
  auto a = *PretrainedModel::Create(ValidModelSpec("org/model-a"));
  auto b = *PretrainedModel::Create(ValidModelSpec("org/model-b"));
  ModelSpec other = ValidModelSpec("org/model-c");
  other.finetune_tags = {"arabic", "poetry"};
  other.pretrain_tags = {"arabic", "web"};
  auto c = *PretrainedModel::Create(other);

  const double same_lineage = vec::CosineSimilarity(a.affinity(),
                                                    b.affinity());
  const double cross_lineage = vec::CosineSimilarity(a.affinity(),
                                                     c.affinity());
  EXPECT_GT(same_lineage, 0.9);
  EXPECT_LT(cross_lineage, same_lineage - 0.2);
}

TEST(PretrainedModelTest, FinetuneRaisesAlignmentWithMatchingDataset) {
  ModelSpec base_spec = ValidModelSpec("org/base");
  base_spec.finetune_tags.clear();
  auto base = *PretrainedModel::Create(base_spec);
  auto tuned = *PretrainedModel::Create(ValidModelSpec("org/tuned"));
  auto target = *Dataset::Create(ValidDatasetSpec());
  EXPECT_GT(tuned.DomainCosine(target), base.DomainCosine(target));
}

TEST(PretrainedModelTest, PredictDistributionsAreRowStochastic) {
  auto model = *PretrainedModel::Create(ValidModelSpec());
  auto target = *Dataset::Create(ValidDatasetSpec());
  auto predictions = model.PredictDistributions(target);
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ(predictions->rows(), target.size());
  EXPECT_EQ(predictions->cols(), 3u);
  for (size_t i = 0; i < predictions->rows(); ++i) {
    double row_sum = 0.0;
    for (size_t z = 0; z < predictions->cols(); ++z) {
      const double p = predictions->At(i, z);
      ASSERT_GE(p, 0.0);
      ASSERT_LE(p, 1.0);
      row_sum += p;
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-9);
  }
}

TEST(PretrainedModelTest, DomainMismatchIsRejected) {
  auto model = *PretrainedModel::Create(ValidModelSpec());
  DatasetSpec cv_spec = ValidDatasetSpec("cv-ds");
  cv_spec.domain = TaskDomain::kCV;
  auto cv_dataset = *Dataset::Create(cv_spec);
  EXPECT_TRUE(
      model.PredictDistributions(cv_dataset).status().IsInvalidArgument());
  EXPECT_TRUE(
      model.ExtractFeatures(cv_dataset).status().IsInvalidArgument());
}

TEST(PretrainedModelTest, FeaturesAreSoftmaxConsistentWithPredictions) {
  auto model = *PretrainedModel::Create(ValidModelSpec());
  auto target = *Dataset::Create(ValidDatasetSpec());
  auto features = *model.ExtractFeatures(target);
  auto predictions = *model.PredictDistributions(target);
  for (size_t i = 0; i < 5; ++i) {
    const std::vector<double> probs = vec::Softmax(features.Row(i));
    for (size_t z = 0; z < probs.size(); ++z) {
      EXPECT_NEAR(probs[z], predictions.At(i, z), 1e-12);
    }
  }
}

TEST(PretrainedModelTest, AlignedModelSeparatesClassesMore) {
  // The class-separation mechanism: an aligned, capable model's features
  // should distinguish target classes more than a misaligned one's.
  auto aligned = *PretrainedModel::Create(ValidModelSpec("org/aligned"));
  ModelSpec far_spec = ValidModelSpec("org/far");
  far_spec.pretrain_tags = {"arabic", "web"};
  far_spec.finetune_tags = {"arabic", "poetry"};
  far_spec.capability = 0.3;
  auto misaligned = *PretrainedModel::Create(far_spec);
  auto target = *Dataset::Create(ValidDatasetSpec());

  auto consistency = [&](const PretrainedModel& model) {
    auto predictions = *model.PredictDistributions(target);
    // Fraction of examples whose argmax source label equals the majority
    // argmax of their class.
    std::vector<std::vector<int>> votes(3, std::vector<int>(3, 0));
    for (size_t i = 0; i < target.size(); ++i) {
      size_t best = 0;
      for (size_t z = 1; z < 3; ++z) {
        if (predictions.At(i, z) > predictions.At(i, best)) best = z;
      }
      ++votes[static_cast<size_t>(target.examples()[i].label)][best];
    }
    int agree = 0;
    for (const auto& row : votes) {
      agree += *std::max_element(row.begin(), row.end());
    }
    return static_cast<double>(agree) / static_cast<double>(target.size());
  };
  EXPECT_GT(consistency(aligned), consistency(misaligned));
}

TEST(ModelCardTest, CardMentionsIdentityAndLineage) {
  const std::string card = GenerateModelCard(ValidModelSpec());
  EXPECT_TRUE(strings::Contains(card, "org/test-model"));
  EXPECT_TRUE(strings::Contains(card, "bert"));
  EXPECT_TRUE(strings::Contains(card, "nli"));
  EXPECT_TRUE(strings::Contains(card, "NLP"));
}

TEST(ModelCardTest, BaseModelCardSaysNoFinetune) {
  ModelSpec spec = ValidModelSpec();
  spec.finetune_tags.clear();
  EXPECT_TRUE(strings::Contains(GenerateModelCard(spec),
                                "without task-specific fine-tuning"));
}

TEST(ModelZooTest, CreateAndLookup) {
  auto zoo = ModelZoo::Create(
      {ValidModelSpec("org/a"), ValidModelSpec("org/b")});
  ASSERT_TRUE(zoo.ok());
  EXPECT_EQ(zoo->size(), 2u);
  EXPECT_EQ(*zoo->IndexOf("org/b"), 1u);
  EXPECT_EQ((*zoo->Find("org/a"))->name(), "org/a");
  EXPECT_TRUE(zoo->IndexOf("org/missing").status().IsNotFound());
}

TEST(ModelZooTest, RejectsDuplicates) {
  auto zoo =
      ModelZoo::Create({ValidModelSpec("org/a"), ValidModelSpec("org/a")});
  EXPECT_TRUE(zoo.status().IsAlreadyExists());
}

TEST(ModelZooTest, SubsetPreservesOrderAndValidatesIndices) {
  auto zoo = *ModelZoo::Create({ValidModelSpec("org/a"),
                                ValidModelSpec("org/b"),
                                ValidModelSpec("org/c")});
  auto subset = zoo.Subset({2, 0});
  ASSERT_TRUE(subset.ok());
  EXPECT_EQ(subset->size(), 2u);
  EXPECT_EQ(subset->model(0).name(), "org/c");
  EXPECT_EQ(subset->model(1).name(), "org/a");
  EXPECT_TRUE(zoo.Subset({5}).status().IsOutOfRange());
}

}  // namespace
}  // namespace tps
