#!/usr/bin/env bash
# Exit-code audit for tps_cli: every error path must return non-zero with
# diagnostics on stderr (usage exits 2, flag/data errors exit 1), every
# success path must return 0, and usage/error text must never pollute
# stdout. Registered as the `cli_exit_code_audit` ctest (labels: cli,
# metrics).
#
#   usage: exit_code_audit.sh <path-to-tps_cli> <scratch-dir>

set -u

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <path-to-tps_cli> <scratch-dir>" >&2
  exit 2
fi

CLI=$1
SCRATCH=$2
# Start from a clean scratch: stale artifacts from a previous run (e.g. a
# store that already holds trained embeddings) would flip the
# "before training" error checks into false failures.
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"
STDOUT=$SCRATCH/stdout.txt
STDERR=$SCRATCH/stderr.txt
FAILURES=0

# expect <expected-code> <description> -- <cli-args...>
# Runs the CLI, checks the exit code, and leaves stdout/stderr in
# $STDOUT/$STDERR for the follow-up checks below.
expect() {
  local want=$1 what=$2
  shift 3  # drop want, what, "--"
  "$CLI" "$@" >"$STDOUT" 2>"$STDERR"
  local got=$?
  if [[ $got -ne $want ]]; then
    echo "FAIL: $what: expected exit $want, got $got (args: $*)" >&2
    sed 's/^/  stderr: /' "$STDERR" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: $what (exit $got)"
  fi
}

require_stderr_contains() {
  local needle=$1 what=$2
  if ! grep -q "$needle" "$STDERR"; then
    echo "FAIL: $what: stderr does not contain '$needle'" >&2
    FAILURES=$((FAILURES + 1))
  fi
}

require_stdout_empty() {
  local what=$1
  if [[ -s $STDOUT ]]; then
    echo "FAIL: $what: expected empty stdout, got:" >&2
    sed 's/^/  stdout: /' "$STDOUT" >&2
    FAILURES=$((FAILURES + 1))
  fi
}

### Usage errors: exit 2, usage on stderr, NOTHING on stdout.

expect 2 "no arguments" --
require_stderr_contains "usage: tps_cli" "no arguments"
require_stdout_empty "no arguments"

expect 2 "unknown command" -- frobnicate
require_stderr_contains "usage: tps_cli" "unknown command"
require_stdout_empty "unknown command"

### Flag and data errors: exit 1, "error:" on stderr, nothing on stdout.

expect 1 "bad domain" -- recall --domain=fortran
require_stderr_contains "error:" "bad domain"
require_stdout_empty "bad domain"

expect 1 "select without artifacts" -- select --domain=nlp --target=mnli
require_stderr_contains "error:" "select without artifacts"

expect 1 "non-integer threads" -- offline --threads=many
require_stderr_contains "error:" "non-integer threads"

expect 1 "threads below one" -- offline --threads=0
require_stderr_contains "error:" "threads below one"

expect 1 "card without model" -- card
require_stderr_contains "error:" "card without model"

expect 1 "card with unknown model" -- card --model=no-such-model
require_stderr_contains "error:" "card with unknown model"

expect 1 "store-info without store" -- store-info
require_stderr_contains "error:" "store-info without store"

expect 1 "store-compact without store" -- store-compact
require_stderr_contains "error:" "store-compact without store"

expect 1 "store in missing directory" -- \
  store-info --store="$SCRATCH/no/such/dir/store.log"
require_stderr_contains "error:" "store in missing directory"

expect 1 "baselines with unknown target" -- \
  baselines --domain=nlp --target=no-such-dataset
require_stderr_contains "error:" "baselines with unknown target"

### Serving subcommands: flag validation fails before anything listens.

expect 1 "serve without endpoint" -- serve --domain=nlp
require_stderr_contains "error:" "serve without endpoint"
require_stdout_empty "serve without endpoint"

expect 1 "serve with zero workers" -- serve --socket="$SCRATCH/s.sock" \
  --workers=0
require_stderr_contains "error:" "serve with zero workers"

expect 1 "serve with negative cache" -- serve --socket="$SCRATCH/s.sock" \
  --cache=-1
require_stderr_contains "error:" "serve with negative cache"

expect 1 "query without endpoint" -- query --cmd=ping
require_stderr_contains "error:" "query without endpoint"
require_stdout_empty "query without endpoint"

expect 1 "query against dead socket" -- \
  query --socket="$SCRATCH/never_bound.sock" --cmd=ping
require_stderr_contains "error:" "query against dead socket"

### Success paths: exit 0. Build the offline artifacts once, then exercise
### the commands that need them.

expect 0 "offline build" -- offline --domain=nlp \
  --matrix="$SCRATCH/m.txt" --clustering="$SCRATCH/c.txt" \
  --store="$SCRATCH/store.log"

ARTIFACTS=(--domain=nlp --matrix="$SCRATCH/m.txt"
  --clustering="$SCRATCH/c.txt" --target=mnli)

expect 0 "recall success" -- recall "${ARTIFACTS[@]}" --k=5
expect 0 "select success" -- select "${ARTIFACTS[@]}"
expect 0 "trace success" -- trace "${ARTIFACTS[@]}"
expect 0 "datasets success" -- datasets --domain=cv
expect 0 "models success" -- models --domain=nlp

expect 1 "select with unknown target" -- select --domain=nlp \
  --matrix="$SCRATCH/m.txt" --clustering="$SCRATCH/c.txt" \
  --target=no-such-dataset
require_stderr_contains "error:" "select with unknown target"

### select via the in-process SelectionService: --repeat/--targets reuse
### loaded artifacts and report cache totals.

expect 0 "select with repeat" -- select "${ARTIFACTS[@]}" --repeat=2
if ! grep -q "served 2 requests; proxy cache:" "$STDOUT"; then
  echo "FAIL: select --repeat=2 did not print the served-requests line" >&2
  FAILURES=$((FAILURES + 1))
fi

expect 0 "select with target list" -- select --domain=nlp \
  --matrix="$SCRATCH/m.txt" --clustering="$SCRATCH/c.txt" \
  --targets=mnli,boolq
if ! grep -q "served 2 requests" "$STDOUT"; then
  echo "FAIL: select --targets=a,b did not serve both" >&2
  FAILURES=$((FAILURES + 1))
fi

expect 1 "select with zero repeat" -- select "${ARTIFACTS[@]}" --repeat=0
require_stderr_contains "error:" "select with zero repeat"

expect 1 "select repeat with trace" -- select "${ARTIFACTS[@]}" --repeat=2 \
  --trace="$SCRATCH/multi_trace.json"
require_stderr_contains "error:" "select repeat with trace"

### --trace on select needs a path; bare --trace must fail loudly instead
### of mixing trace JSON into the human-readable report.

expect 1 "select with valueless --trace" -- select "${ARTIFACTS[@]}" --trace
require_stderr_contains "error:" "select with valueless --trace"

expect 0 "select with trace file" -- select "${ARTIFACTS[@]}" \
  --trace="$SCRATCH/trace.json"
if [[ ! -s $SCRATCH/trace.json ]]; then
  echo "FAIL: select --trace=PATH did not write the trace file" >&2
  FAILURES=$((FAILURES + 1))
fi

### train-embed + select --backend: the learned recall backend. Routing to
### a backend the artifacts cannot serve (or one that does not exist) must
### fail loudly; after training, every backend must serve.

expect 1 "train-embed without artifacts" -- train-embed --domain=nlp
require_stderr_contains "error:" "train-embed without artifacts"

expect 1 "train-embed without sink" -- train-embed --domain=nlp \
  --matrix="$SCRATCH/m.txt"
require_stderr_contains "error:" "train-embed without sink"

expect 1 "train-embed with bad dim" -- train-embed --domain=nlp \
  --matrix="$SCRATCH/m.txt" --out="$SCRATCH/e.txt" --dim=0
require_stderr_contains "error:" "train-embed with bad dim"

expect 1 "select with unknown backend" -- select "${ARTIFACTS[@]}" \
  --backend=no-such-backend
require_stderr_contains "error:" "select with unknown backend"

expect 1 "select embedding backend before training" -- select --domain=nlp \
  --store="$SCRATCH/store.log" --target=mnli --backend=embedding
require_stderr_contains "error:" "select embedding backend before training"

expect 0 "select representative backend" -- select "${ARTIFACTS[@]}" \
  --backend=representative

expect 0 "train-embed into store" -- train-embed --domain=nlp \
  --store="$SCRATCH/store.log" --out="$SCRATCH/e.txt" --epochs=50
if [[ ! -s $SCRATCH/e.txt ]]; then
  echo "FAIL: train-embed --out=PATH did not write the embeddings file" >&2
  FAILURES=$((FAILURES + 1))
fi

expect 0 "select embedding backend from store" -- select --domain=nlp \
  --store="$SCRATCH/store.log" --target=mnli --backend=embedding

expect 0 "select hybrid backend from files" -- select "${ARTIFACTS[@]}" \
  --embeddings="$SCRATCH/e.txt" --backend=hybrid

### --metrics: dumps after success (exit 0), never masks a failure's code,
### and an unwritable dump path fails a successful command.

expect 0 "metrics dump to file" -- datasets --domain=nlp \
  --metrics="$SCRATCH/metrics.json"
if [[ ! -s $SCRATCH/metrics.json ]]; then
  echo "FAIL: --metrics=PATH did not write the metrics file" >&2
  FAILURES=$((FAILURES + 1))
fi

expect 0 "metrics dump to stdout" -- models --domain=cv --metrics
if ! grep -q '"counters"' "$STDOUT"; then
  echo "FAIL: --metrics did not print a metrics JSON object to stdout" >&2
  FAILURES=$((FAILURES + 1))
fi

expect 1 "failed command keeps its exit code with --metrics" -- \
  card --metrics="$SCRATCH/metrics_after_failure.json"
require_stderr_contains "error:" "failed command with --metrics"

expect 1 "unwritable metrics path fails a successful command" -- \
  datasets --domain=nlp --metrics="$SCRATCH/no/such/dir/metrics.json"
require_stderr_contains "error:" "unwritable metrics path"

if [[ $FAILURES -ne 0 ]]; then
  echo "$FAILURES exit-code audit check(s) failed" >&2
  exit 1
fi
echo "all exit-code audit checks passed"
