// Cross-module integration tests: the full offline+online pipeline on both
// domains, exercised through the public API exactly as the examples and
// benches use it, with paper-level assertions on costs and quality.

#include <numeric>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/coarse_recall.h"
#include "core/evaluation.h"
#include "core/two_phase.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "util/rng.h"
#include "util/stats.h"

namespace tps {
namespace {

struct DomainWorld {
  ModelZoo zoo;
  PerformanceMatrix matrix;
  ModelClustering clustering;
};

class IntegrationTest : public testing::Test {
 protected:
  static DomainWorld* Build(TaskDomain domain) {
    ModelZoo zoo = *ModelZoo::Create(domain == TaskDomain::kNLP
                                         ? NlpPaperZooSpecs()
                                         : CvPaperZooSpecs());
    PerformanceMatrix matrix = *PerformanceMatrix::Build(
        zoo, registry_->Benchmarks(domain), *simulator_,
        Hyperparams::DefaultsFor(domain));
    ModelClustering clustering =
        *ClusterModels(matrix, zoo, ModelClusteringOptions());
    return new DomainWorld{std::move(zoo), std::move(matrix),
                           std::move(clustering)};
  }

  static void SetUpTestSuite() {
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    simulator_ = new FineTuneSimulator();
    nlp_ = Build(TaskDomain::kNLP);
    cv_ = Build(TaskDomain::kCV);
  }

  static DomainWorld& World(TaskDomain domain) {
    return domain == TaskDomain::kNLP ? *nlp_ : *cv_;
  }

  static DatasetRegistry* registry_;
  static FineTuneSimulator* simulator_;
  static DomainWorld* nlp_;
  static DomainWorld* cv_;
};

DatasetRegistry* IntegrationTest::registry_ = nullptr;
FineTuneSimulator* IntegrationTest::simulator_ = nullptr;
DomainWorld* IntegrationTest::nlp_ = nullptr;
DomainWorld* IntegrationTest::cv_ = nullptr;

TEST_F(IntegrationTest, OfflineArtifactsMatchPaperScale) {
  EXPECT_EQ(nlp_->matrix.num_models(), 40u);
  EXPECT_EQ(nlp_->matrix.num_datasets(), 24u);  // 40 x 24 trains.
  EXPECT_EQ(cv_->matrix.num_models(), 30u);
  EXPECT_EQ(cv_->matrix.num_datasets(), 10u);   // 30 x 10 trains.
  // Table II scale: a handful of non-singleton clusters covering most of
  // the zoo.
  for (DomainWorld* world : {nlp_, cv_}) {
    const auto non_singleton = world->clustering.NonSingletonClusters();
    EXPECT_GE(non_singleton.size(), 5u);
    EXPECT_LE(non_singleton.size(), 9u);
    size_t covered = 0;
    for (int c : non_singleton) {
      covered += world->clustering.clusters.Members(c).size();
    }
    EXPECT_GT(covered, world->zoo.size() / 2);
  }
}

TEST_F(IntegrationTest, RecallBeatsRandomOnEveryTarget) {
  Rng rng(17);
  for (TaskDomain domain : {TaskDomain::kNLP, TaskDomain::kCV}) {
    DomainWorld& world = World(domain);
    CoarseRecall recall(&world.zoo, &world.matrix, &world.clustering);
    const Hyperparams hp = Hyperparams::DefaultsFor(domain);
    for (const Dataset* target : registry_->Targets(domain)) {
      auto result = *recall.Recall(*target, RecallOptions(), nullptr);
      const auto truth =
          *TrueFinalAccuracies(world.zoo, *target, *simulator_, hp);
      const double recalled = MeanAt(truth, result.TopModels(15));
      double random = 0.0;
      for (int draw = 0; draw < 40; ++draw) {
        random +=
            MeanAt(truth, rng.SampleWithoutReplacement(world.zoo.size(), 15));
      }
      random /= 40.0;
      EXPECT_GT(recalled, random - 0.01) << target->name();
    }
  }
}

TEST_F(IntegrationTest, RecallRegretSmallAtTopFifteen) {
  // Fig. 5 / Table VII: the best (or a within-a-few-points) model is
  // recalled by K = 15 on every target.
  for (TaskDomain domain : {TaskDomain::kNLP, TaskDomain::kCV}) {
    DomainWorld& world = World(domain);
    CoarseRecall recall(&world.zoo, &world.matrix, &world.clustering);
    const Hyperparams hp = Hyperparams::DefaultsFor(domain);
    for (const Dataset* target : registry_->Targets(domain)) {
      auto result = *recall.Recall(*target, RecallOptions(), nullptr);
      const auto truth =
          *TrueFinalAccuracies(world.zoo, *target, *simulator_, hp);
      double best_recalled = 0.0;
      for (size_t index : result.TopModels(15)) {
        best_recalled = std::max(best_recalled, truth[index]);
      }
      EXPECT_GE(best_recalled, stats::Max(truth) - 0.06) << target->name();
    }
  }
}

TEST_F(IntegrationTest, EndToEndSpeedupsMatchPaperBands) {
  // Table VI: 2PH lands at >= 5x over BF and >= 2x over SH, with NLP
  // around 10x / 4x and CV around 6-7x / 3x.
  for (TaskDomain domain : {TaskDomain::kNLP, TaskDomain::kCV}) {
    DomainWorld& world = World(domain);
    const Hyperparams hp = Hyperparams::DefaultsFor(domain);
    std::vector<size_t> all(world.zoo.size());
    std::iota(all.begin(), all.end(), 0);
    TwoPhaseSelector selector(&world.zoo, &world.matrix, &world.clustering,
                              simulator_);
    SuccessiveHalvingSelector sh(&world.zoo, simulator_);
    const double bf_epochs =
        static_cast<double>(world.zoo.size() * hp.epochs);
    for (const Dataset* target : registry_->Targets(domain)) {
      auto report = *selector.Select(*target, TwoPhaseOptions(), hp);
      EpochBudget sh_budget;
      (void)*sh.Select(all, *target, hp, &sh_budget);
      const double speedup_bf = bf_epochs / report.budget.total_epochs();
      const double speedup_sh =
          sh_budget.total_epochs() / report.budget.total_epochs();
      EXPECT_GT(speedup_bf, 5.0) << target->name();
      EXPECT_LT(speedup_bf, 15.0) << target->name();
      EXPECT_GT(speedup_sh, 2.0) << target->name();
    }
  }
}

TEST_F(IntegrationTest, MultiProxyRecallIsAtLeastAsRobust) {
  // Future-work extension: combining proxies should not collapse recall
  // quality on any target (robustness, not dominance).
  DomainWorld& world = World(TaskDomain::kCV);
  CoarseRecall recall(&world.zoo, &world.matrix, &world.clustering);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kCV);
  RecallOptions combined;
  combined.proxies = {"leep", "nce", "knn"};
  for (const Dataset* target : registry_->Targets(TaskDomain::kCV)) {
    auto single = *recall.Recall(*target, RecallOptions(), nullptr);
    auto multi = *recall.Recall(*target, combined, nullptr);
    const auto truth =
        *TrueFinalAccuracies(world.zoo, *target, *simulator_, hp);
    const double single_mean = MeanAt(truth, single.TopModels(10));
    const double multi_mean = MeanAt(truth, multi.TopModels(10));
    EXPECT_GT(multi_mean, single_mean - 0.05) << target->name();
  }
}

TEST_F(IntegrationTest, FirstEpochValidationPredictsFinalOutcome) {
  // The Section IV.A premise (Fig. 3): early validation ranks correlate
  // with final test ranks across the recalled candidates.
  DomainWorld& world = World(TaskDomain::kNLP);
  CoarseRecall recall(&world.zoo, &world.matrix, &world.clustering);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  for (const Dataset* target : registry_->Targets(TaskDomain::kNLP)) {
    auto result = *recall.Recall(*target, RecallOptions(), nullptr);
    std::vector<double> first_val, final_test;
    for (size_t index : result.TopModels(10)) {
      auto run = *simulator_->Run(world.zoo.model(index), *target, hp);
      first_val.push_back(run.val_accuracy.front());
      final_test.push_back(run.final_test());
    }
    EXPECT_GT(stats::SpearmanCorrelation(first_val, final_test), 0.4)
        << target->name();
  }
}

TEST_F(IntegrationTest, LearningRateChangeDoesNotBreakSelection) {
  // Appendix A (Fig. 8): the method is robust to the 1e-5 hyperparameter
  // variant.
  DomainWorld& world = World(TaskDomain::kNLP);
  Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  hp.learning_rate = 1e-5;
  TwoPhaseSelector selector(&world.zoo, &world.matrix, &world.clustering,
                            simulator_);
  auto report = *selector.Select(**registry_->Find("mnli"),
                                 TwoPhaseOptions(), hp);
  std::vector<size_t> all(world.zoo.size());
  std::iota(all.begin(), all.end(), 0);
  BruteForceSelector bf(&world.zoo, simulator_);
  auto bf_outcome = *bf.Select(all, **registry_->Find("mnli"), hp, nullptr);
  EXPECT_GE(report.selection.selected_accuracy,
            bf_outcome.selected_accuracy - 0.06);
}

}  // namespace
}  // namespace tps
