#include "data/latent.h"

#include <cmath>

#include <gtest/gtest.h>

#include "matrix/vector_ops.h"

namespace tps {
namespace latent {
namespace {

TEST(LatentTest, HashIsDeterministicAndDiscriminates) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(LatentTest, CombineSeedsOrderMatters) {
  EXPECT_NE(CombineSeeds(1, 2), CombineSeeds(2, 1));
  EXPECT_EQ(CombineSeeds(1, 2), CombineSeeds(1, 2));
}

TEST(LatentTest, TagVectorIsUnitNormAndDeterministic) {
  const auto v1 = TagVector("nli");
  const auto v2 = TagVector("nli");
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(v1.size(), kDims);
  EXPECT_NEAR(vec::Norm(v1), 1.0, 1e-12);
}

TEST(LatentTest, DistinctTagsAreNearOrthogonal) {
  const auto a = TagVector("sentiment");
  const auto b = TagVector("radiology");
  EXPECT_LT(std::fabs(vec::CosineSimilarity(a, b)), 0.5);
}

TEST(LatentTest, MixTagsSameTagsDifferentSeedsAreClose) {
  const std::vector<std::string> tags = {"english", "nli"};
  const auto a = MixTags(tags, 0.15, 1);
  const auto b = MixTags(tags, 0.15, 2);
  EXPECT_GT(vec::CosineSimilarity(a, b), 0.9);
  EXPECT_NEAR(vec::Norm(a), 1.0, 1e-12);
}

TEST(LatentTest, MixTagsDisjointTagsAreFar) {
  const auto a = MixTags({"english", "nli"}, 0.1, 1);
  const auto b = MixTags({"arabic", "poetry"}, 0.1, 2);
  EXPECT_LT(vec::CosineSimilarity(a, b), 0.5);
}

TEST(LatentTest, MixTagsSharedTagRaisesSimilarity) {
  const auto nli_a = MixTags({"english", "nli"}, 0.1, 1);
  const auto nli_b = MixTags({"french", "nli"}, 0.1, 2);
  const auto unrelated = MixTags({"french", "digits"}, 0.1, 3);
  EXPECT_GT(vec::CosineSimilarity(nli_a, nli_b),
            vec::CosineSimilarity(nli_a, unrelated));
}

TEST(LatentTest, MixTagsNoiseScaleControlsSpread) {
  const std::vector<std::string> tags = {"topic"};
  const double low_noise = vec::CosineSimilarity(MixTags(tags, 0.05, 1),
                                                 MixTags(tags, 0.05, 2));
  const double high_noise = vec::CosineSimilarity(MixTags(tags, 0.8, 1),
                                                  MixTags(tags, 0.8, 2));
  EXPECT_GT(low_noise, high_noise);
}

TEST(LatentTest, MixTagsEmptyTagsIsSeededRandomUnit) {
  const auto a = MixTags({}, 0.1, 42);
  const auto b = MixTags({}, 0.1, 42);
  const auto c = MixTags({}, 0.1, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NEAR(vec::Norm(a), 1.0, 1e-12);
}

TEST(LatentTest, LabelVectorsDifferByLabelAndEntity) {
  const auto a0 = LabelVector(1, 0);
  const auto a1 = LabelVector(1, 1);
  const auto b0 = LabelVector(2, 0);
  EXPECT_NE(a0, a1);
  EXPECT_NE(a0, b0);
  EXPECT_EQ(a0, LabelVector(1, 0));
  EXPECT_NEAR(vec::Norm(a0), 1.0, 1e-12);
}

TEST(LatentTest, AffinityFromCosineMapsRange) {
  EXPECT_DOUBLE_EQ(AffinityFromCosine(1.0), 1.0);
  EXPECT_DOUBLE_EQ(AffinityFromCosine(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(AffinityFromCosine(0.0), 0.5);
}

}  // namespace
}  // namespace latent
}  // namespace tps
