#include "data/dataset.h"

#include <set>

#include <gtest/gtest.h>

#include "data/registry.h"
#include "matrix/vector_ops.h"

namespace tps {
namespace {

DatasetSpec ValidSpec() {
  DatasetSpec spec;
  spec.name = "test-ds";
  spec.num_labels = 3;
  spec.difficulty = 0.4;
  spec.tags = {"english", "nli"};
  spec.num_examples = 60;
  return spec;
}

TEST(DatasetTest, CreateValidatesSpec) {
  DatasetSpec spec = ValidSpec();
  spec.name = "";
  EXPECT_TRUE(Dataset::Create(spec).status().IsInvalidArgument());

  spec = ValidSpec();
  spec.num_labels = 1;
  EXPECT_TRUE(Dataset::Create(spec).status().IsInvalidArgument());

  spec = ValidSpec();
  spec.num_examples = 0;
  EXPECT_TRUE(Dataset::Create(spec).status().IsInvalidArgument());

  spec = ValidSpec();
  spec.difficulty = 1.5;
  EXPECT_TRUE(Dataset::Create(spec).status().IsInvalidArgument());
}

TEST(DatasetTest, GeneratesRequestedExamples) {
  auto ds = Dataset::Create(ValidSpec());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 60u);
  EXPECT_EQ(ds->name(), "test-ds");
}

TEST(DatasetTest, RoundRobinLabelsCoverAllClasses) {
  auto ds = *Dataset::Create(ValidSpec());
  std::vector<int> counts(3, 0);
  for (const Example& ex : ds.examples()) {
    ASSERT_GE(ex.label, 0);
    ASSERT_LT(ex.label, 3);
    ++counts[static_cast<size_t>(ex.label)];
  }
  EXPECT_EQ(counts[0], 20);
  EXPECT_EQ(counts[1], 20);
  EXPECT_EQ(counts[2], 20);
}

TEST(DatasetTest, ExamplesAreUnitNorm) {
  auto ds = *Dataset::Create(ValidSpec());
  for (const Example& ex : ds.examples()) {
    EXPECT_NEAR(vec::Norm(ex.features), 1.0, 1e-9);
  }
}

TEST(DatasetTest, DeterministicByName) {
  auto a = *Dataset::Create(ValidSpec());
  auto b = *Dataset::Create(ValidSpec());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.examples()[i].features, b.examples()[i].features);
  }
  EXPECT_EQ(a.domain_vector(), b.domain_vector());
}

TEST(DatasetTest, DifferentNamesDiffer) {
  DatasetSpec other = ValidSpec();
  other.name = "other-ds";
  auto a = *Dataset::Create(ValidSpec());
  auto b = *Dataset::Create(other);
  EXPECT_NE(a.domain_vector(), b.domain_vector());
}

TEST(DatasetTest, SameClassExamplesAreCloserThanCrossClass) {
  auto ds = *Dataset::Create(ValidSpec());
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    for (size_t j = i + 1; j < ds.size(); ++j) {
      const double cos = vec::CosineSimilarity(ds.examples()[i].features,
                                               ds.examples()[j].features);
      if (ds.examples()[i].label == ds.examples()[j].label) {
        same += cos;
        ++same_n;
      } else {
        cross += cos;
        ++cross_n;
      }
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n + 0.1);
}

TEST(DatasetTest, LabelPrototypesAreDistinctUnitVectors) {
  auto ds = *Dataset::Create(ValidSpec());
  for (int y = 0; y < 3; ++y) {
    EXPECT_NEAR(vec::Norm(ds.label_prototype(y)), 1.0, 1e-12);
  }
  EXPECT_NE(ds.label_prototype(0), ds.label_prototype(1));
}

TEST(DatasetSpecTest, EffectiveChanceAndCeilingDefaults) {
  DatasetSpec spec = ValidSpec();
  EXPECT_NEAR(spec.EffectiveChance(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(spec.EffectiveCeiling(), 0.99 - 0.30 * 0.4, 1e-12);
  spec.chance_accuracy = 0.6;
  spec.ceiling_accuracy = 0.8;
  EXPECT_DOUBLE_EQ(spec.EffectiveChance(), 0.6);
  EXPECT_DOUBLE_EQ(spec.EffectiveCeiling(), 0.8);
}

TEST(RegistryTest, PaperInventoryCounts) {
  auto registry = DatasetRegistry::CreatePaperInventory();
  ASSERT_TRUE(registry.ok());
  EXPECT_EQ(registry->Benchmarks(TaskDomain::kNLP).size(), 24u);
  EXPECT_EQ(registry->Targets(TaskDomain::kNLP).size(), 4u);
  EXPECT_EQ(registry->Benchmarks(TaskDomain::kCV).size(), 10u);
  EXPECT_EQ(registry->Targets(TaskDomain::kCV).size(), 4u);
  EXPECT_EQ(registry->size(), 42u);
}

TEST(RegistryTest, BenchmarkAndTargetSetsAreDisjoint) {
  auto registry = *DatasetRegistry::CreatePaperInventory();
  for (TaskDomain domain : {TaskDomain::kNLP, TaskDomain::kCV}) {
    std::set<std::string> benchmarks;
    for (const Dataset* d : registry.Benchmarks(domain)) {
      benchmarks.insert(d->name());
    }
    for (const Dataset* d : registry.Targets(domain)) {
      EXPECT_EQ(benchmarks.count(d->name()), 0u) << d->name();
    }
  }
}

TEST(RegistryTest, FindByName) {
  auto registry = *DatasetRegistry::CreatePaperInventory();
  auto mnli = registry.Find("mnli");
  ASSERT_TRUE(mnli.ok());
  EXPECT_EQ((*mnli)->spec().role, DatasetRole::kTarget);
  EXPECT_EQ((*mnli)->spec().num_labels, 3);
  EXPECT_TRUE(registry.Find("no-such-dataset").status().IsNotFound());
}

TEST(RegistryTest, RejectsDuplicateNames) {
  std::vector<DatasetSpec> specs = {ValidSpec(), ValidSpec()};
  EXPECT_TRUE(DatasetRegistry::Create(specs).status().IsAlreadyExists());
}

TEST(RegistryTest, ManyLabelDatasetsGetEnoughExamples) {
  auto registry = *DatasetRegistry::CreatePaperInventory();
  auto cub = *registry.Find("cub_birds");
  EXPECT_GE(static_cast<int>(cub->size()), 4 * cub->spec().num_labels);
}

TEST(RegistryTest, DomainToStringNames) {
  EXPECT_EQ(ToString(TaskDomain::kNLP), "NLP");
  EXPECT_EQ(ToString(TaskDomain::kCV), "CV");
  EXPECT_EQ(ToString(DatasetRole::kBenchmark), "benchmark");
  EXPECT_EQ(ToString(DatasetRole::kTarget), "target");
}

}  // namespace
}  // namespace tps
