#include "sim/finetune_simulator.h"

#include <gtest/gtest.h>

#include "sim/epoch_budget.h"
#include "util/stats.h"

namespace tps {
namespace {

ModelSpec StrongModelSpec() {
  ModelSpec spec;
  spec.name = "sim/strong-model";
  spec.family = "bert";
  spec.capability = 0.8;
  spec.pretrain_tags = {"english", "books"};
  spec.finetune_tags = {"english", "nli"};
  spec.num_source_labels = 3;
  return spec;
}

DatasetSpec TargetSpec() {
  DatasetSpec spec;
  spec.name = "sim-target";
  spec.num_labels = 3;
  spec.tags = {"english", "nli"};
  spec.num_examples = 30;
  spec.difficulty = 0.4;
  return spec;
}

class FineTuneSimulatorTest : public testing::Test {
 protected:
  FineTuneSimulatorTest()
      : model_(*PretrainedModel::Create(StrongModelSpec())),
        dataset_(*Dataset::Create(TargetSpec())) {}

  FineTuneSimulator simulator_;
  PretrainedModel model_;
  Dataset dataset_;
};

TEST_F(FineTuneSimulatorTest, RunProducesRequestedEpochs) {
  Hyperparams hp;
  hp.epochs = 5;
  auto run = simulator_.Run(model_, dataset_, hp);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->epochs(), 5);
  EXPECT_EQ(run->val_accuracy.size(), 5u);
  EXPECT_EQ(run->test_accuracy.size(), 5u);
  EXPECT_EQ(run->model_name, model_.name());
  EXPECT_EQ(run->dataset_name, dataset_.name());
}

TEST_F(FineTuneSimulatorTest, AccuraciesStayInUnitInterval) {
  Hyperparams hp;
  hp.epochs = 10;
  auto run = *simulator_.Run(model_, dataset_, hp);
  for (double v : run.val_accuracy) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  for (double t : run.test_accuracy) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

TEST_F(FineTuneSimulatorTest, DeterministicForSameInputs) {
  Hyperparams hp;
  auto a = *simulator_.Run(model_, dataset_, hp);
  auto b = *simulator_.Run(model_, dataset_, hp);
  EXPECT_EQ(a.val_accuracy, b.val_accuracy);
  EXPECT_EQ(a.test_accuracy, b.test_accuracy);
}

TEST_F(FineTuneSimulatorTest, SeedChangesNoiseNotTrend) {
  Hyperparams a;
  a.seed = 1;
  Hyperparams b;
  b.seed = 2;
  auto run_a = *simulator_.Run(model_, dataset_, a);
  auto run_b = *simulator_.Run(model_, dataset_, b);
  EXPECT_NE(run_a.val_accuracy, run_b.val_accuracy);
  // The underlying truth is the same, so final accuracies stay close.
  EXPECT_NEAR(run_a.final_test(), run_b.final_test(), 0.05);
}

TEST_F(FineTuneSimulatorTest, CurvesRiseTowardAsymptote) {
  Hyperparams hp;
  hp.epochs = 8;
  auto run = *simulator_.Run(model_, dataset_, hp);
  // Aligned strong model: epoch 3 should clearly beat epoch 1 and approach
  // the oracle asymptote.
  EXPECT_GT(run.val_accuracy[2], run.val_accuracy[0]);
  const TransferTruth truth =
      simulator_.oracle().Evaluate(model_, dataset_);
  EXPECT_NEAR(run.best_val(), truth.asymptotic_accuracy, 0.08);
}

TEST_F(FineTuneSimulatorTest, LowerLearningRateConvergesSlower) {
  Hyperparams fast;
  fast.learning_rate = 3e-5;
  Hyperparams slow;
  slow.learning_rate = 1e-5;
  auto fast_run = *simulator_.Run(model_, dataset_, fast);
  auto slow_run = *simulator_.Run(model_, dataset_, slow);
  EXPECT_GT(fast_run.val_accuracy[0], slow_run.val_accuracy[0]);
}

TEST_F(FineTuneSimulatorTest, RejectsBadHyperparams) {
  Hyperparams hp;
  hp.epochs = 0;
  EXPECT_TRUE(
      simulator_.Run(model_, dataset_, hp).status().IsInvalidArgument());
  hp.epochs = 3;
  hp.learning_rate = 0.0;
  EXPECT_TRUE(
      simulator_.Run(model_, dataset_, hp).status().IsInvalidArgument());
}

TEST_F(FineTuneSimulatorTest, RejectsDomainMismatch) {
  DatasetSpec cv = TargetSpec();
  cv.name = "sim-cv";
  cv.domain = TaskDomain::kCV;
  auto cv_dataset = *Dataset::Create(cv);
  EXPECT_TRUE(simulator_.Run(model_, cv_dataset, Hyperparams())
                  .status()
                  .IsInvalidArgument());
}

TEST_F(FineTuneSimulatorTest, DefaultsMatchDomain) {
  auto run = *simulator_.RunWithDefaults(model_, dataset_);
  EXPECT_EQ(run.epochs(), 5);  // NLP default.
}

TEST_F(FineTuneSimulatorTest, BestValHelper) {
  TrainingRun run;
  EXPECT_DOUBLE_EQ(run.best_val(), 0.0);
  EXPECT_DOUBLE_EQ(run.final_test(), 0.0);
  run.val_accuracy = {0.3, 0.7, 0.5};
  run.test_accuracy = {0.2, 0.6, 0.55};
  EXPECT_DOUBLE_EQ(run.best_val(), 0.7);
  EXPECT_DOUBLE_EQ(run.final_test(), 0.55);
}

TEST(HyperparamsTest, DomainDefaults) {
  EXPECT_EQ(Hyperparams::DefaultsFor(TaskDomain::kNLP).epochs, 5);
  EXPECT_EQ(Hyperparams::DefaultsFor(TaskDomain::kCV).epochs, 4);
  EXPECT_DOUBLE_EQ(Hyperparams::DefaultsFor(TaskDomain::kNLP).learning_rate,
                   3e-5);
}

TEST(EpochBudgetTest, TracksTrainingAndInference) {
  EpochBudget budget;
  EXPECT_DOUBLE_EQ(budget.total_epochs(), 0.0);
  budget.ChargeTraining(10.0);
  budget.ChargeProxyInference();
  budget.ChargeProxyInference();
  EXPECT_DOUBLE_EQ(budget.training_epochs(), 10.0);
  EXPECT_DOUBLE_EQ(budget.inference_epochs(), 1.0);
  EXPECT_DOUBLE_EQ(budget.total_epochs(), 11.0);
  budget.Reset();
  EXPECT_DOUBLE_EQ(budget.total_epochs(), 0.0);
}

}  // namespace
}  // namespace tps
