#include "sim/transfer_oracle.h"

#include <gtest/gtest.h>

namespace tps {
namespace {

ModelSpec MakeModelSpec(const std::string& name, double capability,
                        std::vector<std::string> ft_tags = {"english",
                                                            "nli"}) {
  ModelSpec spec;
  spec.name = name;
  spec.family = "bert";
  spec.capability = capability;
  spec.pretrain_tags = {"english", "books"};
  spec.finetune_tags = std::move(ft_tags);
  spec.num_source_labels = 3;
  return spec;
}

DatasetSpec MakeDatasetSpec(const std::string& name = "oracle-target") {
  DatasetSpec spec;
  spec.name = name;
  spec.num_labels = 3;
  spec.tags = {"english", "nli"};
  spec.num_examples = 30;
  spec.difficulty = 0.4;
  return spec;
}

TEST(TransferOracleTest, TruthIsDeterministic) {
  TransferOracle oracle;
  auto model = *PretrainedModel::Create(MakeModelSpec("m", 0.6));
  auto dataset = *Dataset::Create(MakeDatasetSpec());
  const TransferTruth a = oracle.Evaluate(model, dataset);
  const TransferTruth b = oracle.Evaluate(model, dataset);
  EXPECT_DOUBLE_EQ(a.asymptotic_accuracy, b.asymptotic_accuracy);
  EXPECT_DOUBLE_EQ(a.convergence_rate, b.convergence_rate);
  EXPECT_DOUBLE_EQ(a.overfit_coefficient, b.overfit_coefficient);
}

TEST(TransferOracleTest, AccuracyWithinSaneBounds) {
  TransferOracle oracle;
  auto dataset = *Dataset::Create(MakeDatasetSpec());
  for (double cap : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto model = *PretrainedModel::Create(
        MakeModelSpec(std::string("m") + std::to_string(cap), cap));
    const TransferTruth truth = oracle.Evaluate(model, dataset);
    EXPECT_GT(truth.asymptotic_accuracy, 0.0);
    EXPECT_LT(truth.asymptotic_accuracy, 1.0);
    EXPECT_GT(truth.convergence_rate, 0.0);
    EXPECT_GE(truth.overfit_coefficient, 0.0);
  }
}

TEST(TransferOracleTest, HigherCapabilityHelpsOnAverage) {
  TransferOracle oracle;
  // Average over many datasets so pair noise cancels.
  double weak_sum = 0.0, strong_sum = 0.0;
  for (int d = 0; d < 20; ++d) {
    auto dataset = *Dataset::Create(
        MakeDatasetSpec(std::string("oracle-ds-") + std::to_string(d)));
    auto weak = *PretrainedModel::Create(MakeModelSpec("weak", 0.35));
    auto strong = *PretrainedModel::Create(MakeModelSpec("strong", 0.8));
    weak_sum += oracle.Evaluate(weak, dataset).asymptotic_accuracy;
    strong_sum += oracle.Evaluate(strong, dataset).asymptotic_accuracy;
  }
  EXPECT_GT(strong_sum, weak_sum + 0.5);
}

TEST(TransferOracleTest, DomainAlignmentHelps) {
  TransferOracle oracle;
  auto dataset = *Dataset::Create(MakeDatasetSpec());
  auto aligned = *PretrainedModel::Create(MakeModelSpec("aligned", 0.6));
  auto misaligned = *PretrainedModel::Create(
      MakeModelSpec("misaligned", 0.6, {"arabic", "poetry"}));
  const TransferTruth a = oracle.Evaluate(aligned, dataset);
  const TransferTruth b = oracle.Evaluate(misaligned, dataset);
  EXPECT_GT(a.alignment, b.alignment);
  EXPECT_GT(a.asymptotic_accuracy, b.asymptotic_accuracy);
  EXPECT_GT(a.convergence_rate, b.convergence_rate);
}

TEST(TransferOracleTest, AccuracyRespectsChanceAndCeiling) {
  TransferOracle oracle;
  DatasetSpec narrow = MakeDatasetSpec("narrow-range");
  narrow.chance_accuracy = 0.55;
  narrow.ceiling_accuracy = 0.65;
  auto dataset = *Dataset::Create(narrow);
  for (double cap : {0.1, 0.5, 0.9}) {
    auto model = *PretrainedModel::Create(
        MakeModelSpec(std::string("m") + std::to_string(cap), cap));
    const TransferTruth truth = oracle.Evaluate(model, dataset);
    // Range-scaled noise keeps narrow-range targets near their band.
    EXPECT_GT(truth.asymptotic_accuracy, 0.45);
    EXPECT_LT(truth.asymptotic_accuracy, 0.70);
  }
}

TEST(TransferOracleTest, FamilyNoiseIsSharedWithinFamily) {
  TransferOracle oracle;
  // Two same-capability models of the same family vs a different family:
  // within-family accuracy difference should usually be smaller.
  double same_family_gap = 0.0, cross_family_gap = 0.0;
  for (int d = 0; d < 25; ++d) {
    auto dataset = *Dataset::Create(
        MakeDatasetSpec(std::string("family-ds-") + std::to_string(d)));
    ModelSpec a = MakeModelSpec("fam-a", 0.6);
    ModelSpec b = MakeModelSpec("fam-b", 0.6);
    ModelSpec c = MakeModelSpec("fam-c", 0.6);
    c.family = "roberta";
    auto ma = *PretrainedModel::Create(a);
    auto mb = *PretrainedModel::Create(b);
    auto mc = *PretrainedModel::Create(c);
    const double acc_a = oracle.Evaluate(ma, dataset).asymptotic_accuracy;
    const double acc_b = oracle.Evaluate(mb, dataset).asymptotic_accuracy;
    const double acc_c = oracle.Evaluate(mc, dataset).asymptotic_accuracy;
    same_family_gap += std::abs(acc_a - acc_b);
    cross_family_gap += std::abs(acc_a - acc_c);
  }
  EXPECT_LT(same_family_gap, cross_family_gap);
}

TEST(TransferOracleTest, CustomParamsChangeTheLaw) {
  OracleParams params;
  params.sigmoid_slope = 1.0;  // Much flatter gate.
  TransferOracle flat(params);
  TransferOracle sharp;
  auto dataset = *Dataset::Create(MakeDatasetSpec());
  auto weak = *PretrainedModel::Create(
      MakeModelSpec("w", 0.2, {"arabic", "poetry"}));
  auto strong = *PretrainedModel::Create(MakeModelSpec("s", 0.9));
  const double flat_gap =
      flat.Evaluate(strong, dataset).asymptotic_accuracy -
      flat.Evaluate(weak, dataset).asymptotic_accuracy;
  const double sharp_gap =
      sharp.Evaluate(strong, dataset).asymptotic_accuracy -
      sharp.Evaluate(weak, dataset).asymptotic_accuracy;
  EXPECT_GT(sharp_gap, flat_gap);
}

}  // namespace
}  // namespace tps
