#include "sim/ensemble.h"

#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "data/registry.h"
#include "model/paper_zoo.h"

namespace tps {
namespace {

class EnsembleTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new ModelZoo(*ModelZoo::Create(NlpPaperZooSpecs()));
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    simulator_ = new FineTuneSimulator();
    target_ = *registry_->Find("mnli");
    hp_ = Hyperparams::DefaultsFor(TaskDomain::kNLP);
    truth_ = new std::vector<double>(
        *TrueFinalAccuracies(*zoo_, *target_, *simulator_, hp_));
  }

  static ModelZoo* zoo_;
  static DatasetRegistry* registry_;
  static FineTuneSimulator* simulator_;
  static const Dataset* target_;
  static Hyperparams hp_;
  static std::vector<double>* truth_;
};

ModelZoo* EnsembleTest::zoo_ = nullptr;
DatasetRegistry* EnsembleTest::registry_ = nullptr;
FineTuneSimulator* EnsembleTest::simulator_ = nullptr;
const Dataset* EnsembleTest::target_ = nullptr;
Hyperparams EnsembleTest::hp_;
std::vector<double>* EnsembleTest::truth_ = nullptr;

TEST_F(EnsembleTest, SingleMemberMatchesItsOwnAccuracy) {
  const size_t best = BestModel(*truth_);
  auto result = EvaluateEnsemble(*zoo_, {best}, *target_, *simulator_, hp_);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->ensemble_accuracy, (*truth_)[best], 0.03);
  EXPECT_DOUBLE_EQ(result->mean_member_similarity, 1.0);
  ASSERT_EQ(result->member_accuracies.size(), 1u);
  EXPECT_DOUBLE_EQ(result->member_accuracies[0], (*truth_)[best]);
}

TEST_F(EnsembleTest, TopThreeEnsembleBeatsItsMeanMember) {
  const std::vector<size_t> top3 = TopKByAccuracy(*truth_, 3);
  auto result =
      EvaluateEnsemble(*zoo_, top3, *target_, *simulator_, hp_);
  ASSERT_TRUE(result.ok());
  const double mean_member =
      MeanAt(*truth_, top3);
  EXPECT_GT(result->ensemble_accuracy, mean_member - 0.01);
}

TEST_F(EnsembleTest, DiverseMembersGainMoreThanClones) {
  // Three near-identical QQP siblings vs three strong-but-diverse models.
  const size_t a = *zoo_->IndexOf("Jeevesh8/bert_ft_qqp-68");
  const size_t b = *zoo_->IndexOf("Jeevesh8/bert_ft_qqp-9");
  const size_t c = *zoo_->IndexOf("Jeevesh8/bert_ft_qqp-40");
  auto clones =
      *EvaluateEnsemble(*zoo_, {a, b, c}, *target_, *simulator_, hp_);

  const std::vector<size_t> top3 = TopKByAccuracy(*truth_, 3);
  auto diverse =
      *EvaluateEnsemble(*zoo_, top3, *target_, *simulator_, hp_);

  EXPECT_GT(clones.mean_member_similarity, 0.9);
  // Clone ensembles cannot rise far above their members.
  const double clone_gain =
      clones.ensemble_accuracy - MeanAt(*truth_, {a, b, c});
  EXPECT_LT(clone_gain, 0.05);
  // Quality sanity: the diverse top-3 ensemble is clearly better.
  EXPECT_GT(diverse.ensemble_accuracy, clones.ensemble_accuracy);
}

TEST_F(EnsembleTest, DeterministicForSameOptions) {
  const std::vector<size_t> top3 = TopKByAccuracy(*truth_, 3);
  auto a = *EvaluateEnsemble(*zoo_, top3, *target_, *simulator_, hp_);
  auto b = *EvaluateEnsemble(*zoo_, top3, *target_, *simulator_, hp_);
  EXPECT_DOUBLE_EQ(a.ensemble_accuracy, b.ensemble_accuracy);
}

TEST_F(EnsembleTest, InputValidation) {
  EXPECT_TRUE(EvaluateEnsemble(*zoo_, {}, *target_, *simulator_, hp_)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(EvaluateEnsemble(*zoo_, {999}, *target_, *simulator_, hp_)
                  .status()
                  .IsOutOfRange());
  EnsembleOptions bad;
  bad.num_examples = 0;
  EXPECT_TRUE(EvaluateEnsemble(*zoo_, {0}, *target_, *simulator_, hp_, bad)
                  .status()
                  .IsInvalidArgument());
  bad.num_examples = 10;
  bad.shared_difficulty_weight = 1.5;
  EXPECT_TRUE(EvaluateEnsemble(*zoo_, {0}, *target_, *simulator_, hp_, bad)
                  .status()
                  .IsInvalidArgument());
}

class EnsembleSizeTest : public EnsembleTest,
                         public testing::WithParamInterface<size_t> {};

TEST_P(EnsembleSizeTest, MarginalAccuracyIsBounded) {
  // Property: for any odd committee of the top-k models, the ensemble is
  // at least roughly as good as its median member and at most 1.0.
  const size_t k = GetParam();
  const std::vector<size_t> members = TopKByAccuracy(*truth_, k);
  auto result =
      *EvaluateEnsemble(*zoo_, members, *target_, *simulator_, hp_);
  const double worst_member = (*truth_)[members.back()];
  EXPECT_GE(result.ensemble_accuracy, worst_member - 0.05);
  EXPECT_LE(result.ensemble_accuracy, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Committees, EnsembleSizeTest,
                         testing::Values(1, 3, 5, 7, 9));

}  // namespace
}  // namespace tps
