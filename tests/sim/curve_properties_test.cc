// Parameterized property sweep over the fine-tune simulator's curve
// family: for every (difficulty, capability, learning-rate) combination
// the curves must respect the invariants the selection algorithms rely on.

#include <gtest/gtest.h>

#include "sim/finetune_simulator.h"
#include "util/stats.h"

namespace tps {
namespace {

struct CurveCase {
  double difficulty;
  double capability;
  double learning_rate;
};

std::string CaseName(const testing::TestParamInfo<CurveCase>& info) {
  const CurveCase& c = info.param;
  return std::string("d") + std::to_string(static_cast<int>(c.difficulty * 100)) + "_c" +
         std::to_string(static_cast<int>(c.capability * 100)) + "_lr" +
         std::to_string(static_cast<int>(c.learning_rate * 1e6));
}

class CurvePropertiesTest : public testing::TestWithParam<CurveCase> {};

TEST_P(CurvePropertiesTest, CurveInvariantsHold) {
  const CurveCase& c = GetParam();

  ModelSpec model_spec;
  model_spec.name = std::string("curveprop/model-") + CaseName({GetParam(), 0});
  model_spec.family = "bert";
  model_spec.capability = c.capability;
  model_spec.pretrain_tags = {"english", "books"};
  model_spec.finetune_tags = {"english", "nli"};
  model_spec.num_source_labels = 3;
  auto model = *PretrainedModel::Create(model_spec);

  DatasetSpec dataset_spec;
  dataset_spec.name = std::string("curveprop/ds-") + CaseName({GetParam(), 0});
  dataset_spec.num_labels = 3;
  dataset_spec.difficulty = c.difficulty;
  dataset_spec.tags = {"english", "nli"};
  dataset_spec.num_examples = 30;
  auto dataset = *Dataset::Create(dataset_spec);

  FineTuneSimulator simulator;
  Hyperparams hp;
  hp.learning_rate = c.learning_rate;
  hp.epochs = 12;
  auto run = *simulator.Run(model, dataset, hp);

  // 1. All accuracies live in [0, 1].
  for (double v : run.val_accuracy) {
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
  }
  // 2. Validation starts above half the chance floor (training never makes
  //    a model much worse than guessing) ...
  const double chance = dataset.spec().EffectiveChance();
  EXPECT_GT(run.val_accuracy.front(), 0.25 * chance);
  // 3. ... and the best validation beats the first epoch (learning
  //    happens) for all but pathological settings.
  EXPECT_GE(run.best_val(), run.val_accuracy.front() - 0.02);
  // 4. The curve approaches the oracle's asymptote from below: the best
  //    value does not exceed asymptote + noise margin.
  const TransferTruth truth = simulator.oracle().Evaluate(model, dataset);
  EXPECT_LE(run.best_val(), truth.asymptotic_accuracy + 0.08);
  // 5. Test tracks validation: final test within a small gap of late-epoch
  //    validation.
  EXPECT_NEAR(run.final_test(), run.val_accuracy.back(), 0.08);
  // 6. Determinism.
  auto again = *simulator.Run(model, dataset, hp);
  EXPECT_EQ(run.val_accuracy, again.val_accuracy);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CurvePropertiesTest,
    testing::Values(CurveCase{0.1, 0.3, 3e-5}, CurveCase{0.1, 0.8, 3e-5},
                    CurveCase{0.5, 0.3, 3e-5}, CurveCase{0.5, 0.6, 3e-5},
                    CurveCase{0.5, 0.9, 3e-5}, CurveCase{0.9, 0.5, 3e-5},
                    CurveCase{0.5, 0.6, 1e-5}, CurveCase{0.5, 0.6, 1e-4},
                    CurveCase{0.2, 0.7, 1e-5}, CurveCase{0.8, 0.8, 1e-4}),
    CaseName);

}  // namespace
}  // namespace tps
