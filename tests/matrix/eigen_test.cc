#include "matrix/eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tps {
namespace {

TEST(EigenTest, IdentityHasUnitEigenvalues) {
  auto result = SymmetricEigen(Matrix::Identity(4));
  ASSERT_TRUE(result.ok());
  for (double v : result->values) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(EigenTest, DiagonalMatrixEigenvaluesSortedDescending) {
  auto m = *Matrix::FromRows({{2, 0, 0}, {0, 5, 0}, {0, 0, 3}});
  auto result = SymmetricEigen(m);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->values[0], 5.0, 1e-12);
  EXPECT_NEAR(result->values[1], 3.0, 1e-12);
  EXPECT_NEAR(result->values[2], 2.0, 1e-12);
}

TEST(EigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  auto m = *Matrix::FromRows({{2, 1}, {1, 2}});
  auto result = SymmetricEigen(m);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->values[0], 3.0, 1e-10);
  EXPECT_NEAR(result->values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::fabs(result->vectors.At(0, 0)), inv_sqrt2, 1e-10);
  EXPECT_NEAR(std::fabs(result->vectors.At(1, 0)), inv_sqrt2, 1e-10);
}

TEST(EigenTest, RejectsNonSquare) {
  EXPECT_TRUE(SymmetricEigen(Matrix(2, 3)).status().IsInvalidArgument());
}

TEST(EigenTest, RejectsAsymmetric) {
  auto m = *Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_TRUE(SymmetricEigen(m).status().IsInvalidArgument());
}

class EigenPropertyTest : public testing::TestWithParam<int> {};

TEST_P(EigenPropertyTest, ReconstructsMatrixAndOrthonormalVectors) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 1000 + 5);
  // Random symmetric matrix A = B + B^T.
  Matrix a(static_cast<size_t>(n), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double v = rng.Uniform(-1.0, 1.0);
      a.At(static_cast<size_t>(i), static_cast<size_t>(j)) = v;
      a.At(static_cast<size_t>(j), static_cast<size_t>(i)) = v;
    }
  }
  auto result = SymmetricEigen(a);
  ASSERT_TRUE(result.ok());

  // V diag(lambda) V^T == A.
  const Matrix& v = result->vectors;
  Matrix reconstructed(a.rows(), a.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < a.rows(); ++k) {
        sum += v.At(i, k) * result->values[k] * v.At(j, k);
      }
      reconstructed.At(i, j) = sum;
    }
  }
  EXPECT_TRUE(a.ApproxEquals(reconstructed, 1e-8));

  // Columns are orthonormal: V^T V == I.
  for (size_t c1 = 0; c1 < a.cols(); ++c1) {
    for (size_t c2 = c1; c2 < a.cols(); ++c2) {
      double dot = 0.0;
      for (size_t r = 0; r < a.rows(); ++r) {
        dot += v.At(r, c1) * v.At(r, c2);
      }
      EXPECT_NEAR(dot, c1 == c2 ? 1.0 : 0.0, 1e-9);
    }
  }

  // Trace equals the eigenvalue sum.
  double trace = 0.0, eigen_sum = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) trace += a.At(i, i);
  for (double lambda : result->values) eigen_sum += lambda;
  EXPECT_NEAR(trace, eigen_sum, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         testing::Values(1, 2, 3, 5, 8, 16, 32));

}  // namespace
}  // namespace tps
