#include "matrix/matrix.h"

#include <gtest/gtest.h>

namespace tps {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(MatrixTest, ConstructWithFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m.At(r, c), 1.5);
  }
}

TEST(MatrixTest, FromRowsBuildsAndRejectsRagged) {
  auto ok = Matrix::FromRows({{1, 2}, {3, 4}});
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok->At(1, 0), 3.0);
  auto ragged = Matrix::FromRows({{1, 2}, {3}});
  EXPECT_TRUE(ragged.status().IsInvalidArgument());
  auto empty = Matrix::FromRows({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(MatrixTest, IdentityHasOnesOnDiagonal) {
  const Matrix id = Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id.At(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, RowAndColExtract) {
  auto m = *Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.Col(2), (std::vector<double>{3, 6}));
}

TEST(MatrixTest, SetRowOverwrites) {
  Matrix m(2, 2);
  m.SetRow(0, {7, 8});
  EXPECT_DOUBLE_EQ(m.At(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.0);
}

TEST(MatrixTest, TransposedSwapsShape) {
  auto m = *Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6.0);
  EXPECT_TRUE(t.Transposed() == m);
}

TEST(MatrixTest, MultiplyKnownProduct) {
  auto a = *Matrix::FromRows({{1, 2}, {3, 4}});
  auto b = *Matrix::FromRows({{5, 6}, {7, 8}});
  auto product = a.Multiply(b);
  ASSERT_TRUE(product.ok());
  EXPECT_DOUBLE_EQ(product->At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(product->At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(product->At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(product->At(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentityIsNoOp) {
  auto a = *Matrix::FromRows({{1, 2}, {3, 4}});
  auto product = a.Multiply(Matrix::Identity(2));
  ASSERT_TRUE(product.ok());
  EXPECT_TRUE(*product == a);
}

TEST(MatrixTest, MultiplyShapeMismatchFails) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_TRUE(a.Multiply(b).status().IsInvalidArgument());
}

TEST(MatrixTest, RowAndColMeans) {
  auto m = *Matrix::FromRows({{1, 3}, {5, 7}});
  EXPECT_EQ(m.RowMeans(), (std::vector<double>{2, 6}));
  EXPECT_EQ(m.ColMeans(), (std::vector<double>{3, 5}));
}

TEST(MatrixTest, ApproxEquals) {
  auto a = *Matrix::FromRows({{1.0, 2.0}});
  auto b = *Matrix::FromRows({{1.0 + 1e-13, 2.0}});
  EXPECT_TRUE(a.ApproxEquals(b));
  EXPECT_FALSE(a.ApproxEquals(b, 1e-15));
  EXPECT_FALSE(a.ApproxEquals(Matrix(2, 1)));
}

TEST(MatrixTest, ToStringMentionsShape) {
  Matrix m(2, 2, 0.5);
  EXPECT_NE(m.ToString().find("2 x 2"), std::string::npos);
}

}  // namespace
}  // namespace tps
