#include "matrix/vector_ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tps {
namespace vec {
namespace {

TEST(VectorOpsTest, DotAndNorms) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {4, -5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(Norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(L1Norm(b), 15.0);
}

TEST(VectorOpsTest, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 1}, {1, 1}), 0.0);
}

TEST(VectorOpsTest, CosineSimilarityKnownCases) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {-1, 0}), -1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 0}), 0.0);  // Zero vector.
}

TEST(VectorOpsTest, Arithmetic) {
  EXPECT_EQ(Add({1, 2}, {3, 4}), (std::vector<double>{4, 6}));
  EXPECT_EQ(Subtract({3, 4}, {1, 2}), (std::vector<double>{2, 2}));
  EXPECT_EQ(Scale({1, -2}, 3.0), (std::vector<double>{3, -6}));
  EXPECT_EQ(AbsDiff({1, 5}, {4, 2}), (std::vector<double>{3, 3}));
}

TEST(VectorOpsTest, MeanOfTopK) {
  const std::vector<double> v = {0.1, 0.9, 0.5, 0.7};
  EXPECT_DOUBLE_EQ(MeanOfTopK(v, 1), 0.9);
  EXPECT_DOUBLE_EQ(MeanOfTopK(v, 2), 0.8);
  EXPECT_DOUBLE_EQ(MeanOfTopK(v, 4), 0.55);
  // k larger than size clamps to size; k = 0 clamps to 1.
  EXPECT_DOUBLE_EQ(MeanOfTopK(v, 100), 0.55);
  EXPECT_DOUBLE_EQ(MeanOfTopK(v, 0), 0.9);
  EXPECT_DOUBLE_EQ(MeanOfTopK({}, 3), 0.0);
}

TEST(VectorOpsTest, NormalizeInPlace) {
  std::vector<double> v = {3, 4};
  NormalizeInPlace(v);
  EXPECT_DOUBLE_EQ(v[0], 0.6);
  EXPECT_DOUBLE_EQ(v[1], 0.8);
  std::vector<double> zero = {0, 0};
  NormalizeInPlace(zero);  // No-op, no NaN.
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

TEST(VectorOpsTest, SoftmaxSumsToOneAndOrders) {
  const std::vector<double> probs = Softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0, 1e-12);
  EXPECT_LT(probs[0], probs[1]);
  EXPECT_LT(probs[1], probs[2]);
}

TEST(VectorOpsTest, SoftmaxIsShiftInvariantAndStable) {
  const std::vector<double> a = Softmax({1.0, 2.0});
  const std::vector<double> b = Softmax({1001.0, 1002.0});
  EXPECT_NEAR(a[0], b[0], 1e-12);
  EXPECT_FALSE(std::isnan(b[0]));
  EXPECT_TRUE(Softmax({}).empty());
}

TEST(VectorOpsTest, SoftmaxUniformForEqualLogits) {
  const std::vector<double> probs = Softmax({5.0, 5.0, 5.0, 5.0});
  for (double p : probs) EXPECT_NEAR(p, 0.25, 1e-12);
}

}  // namespace
}  // namespace vec
}  // namespace tps
