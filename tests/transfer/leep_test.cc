#include "transfer/leep.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "model/pretrained_model.h"

namespace tps {
namespace {

TEST(LeepTest, PerfectOneToOneMappingScoresNearZero) {
  // Source label z == target label y, fully confident: EEP predicts the
  // right label with probability 1, so LEEP = log(1) = 0.
  auto predictions = *Matrix::FromRows({{1, 0}, {0, 1}, {1, 0}, {0, 1}});
  const std::vector<int> labels = {0, 1, 0, 1};
  auto score = LeepFromPredictions(predictions, labels, 2);
  ASSERT_TRUE(score.ok());
  EXPECT_NEAR(*score, 0.0, 1e-9);
}

TEST(LeepTest, UniformPredictionsScoreLabelEntropy) {
  // Uninformative source predictions: P(y|z) collapses to the label
  // marginal, so LEEP = log(1/2) for balanced binary labels.
  auto predictions = *Matrix::FromRows(
      {{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}});
  const std::vector<int> labels = {0, 1, 0, 1};
  auto score = LeepFromPredictions(predictions, labels, 2);
  ASSERT_TRUE(score.ok());
  EXPECT_NEAR(*score, std::log(0.5), 1e-9);
}

TEST(LeepTest, HandComputedThreeExampleCase) {
  // n=3, two source labels, two target labels; verify against a by-hand
  // evaluation of the LEEP formula.
  auto predictions =
      *Matrix::FromRows({{0.9, 0.1}, {0.2, 0.8}, {0.6, 0.4}});
  const std::vector<int> labels = {0, 1, 0};
  // Joint P(y,z): y0 gets rows 0 and 2, y1 gets row 1, all / 3.
  // P(0,0)=1.5/3=0.5  P(0,1)=0.5/3
  // P(1,0)=0.2/3      P(1,1)=0.8/3
  // P(z=0)=1.7/3, P(z=1)=1.3/3
  // P(0|0)=1.5/1.7, P(0|1)=0.5/1.3, P(1|0)=0.2/1.7, P(1|1)=0.8/1.3
  const double p00 = 1.5 / 1.7, p01 = 0.5 / 1.3;
  const double p10 = 0.2 / 1.7, p11 = 0.8 / 1.3;
  const double eep0 = p00 * 0.9 + p01 * 0.1;
  const double eep1 = p10 * 0.2 + p11 * 0.8;
  const double eep2 = p00 * 0.6 + p01 * 0.4;
  const double expected =
      (std::log(eep0) + std::log(eep1) + std::log(eep2)) / 3.0;
  auto score = LeepFromPredictions(predictions, labels, 2);
  ASSERT_TRUE(score.ok());
  EXPECT_NEAR(*score, expected, 1e-12);
}

TEST(LeepTest, ScoreIsNonPositive) {
  auto predictions = *Matrix::FromRows({{0.7, 0.3}, {0.4, 0.6}});
  auto score = LeepFromPredictions(predictions, {0, 1}, 2);
  ASSERT_TRUE(score.ok());
  EXPECT_LE(*score, 1e-12);
}

TEST(LeepTest, MoreInformativePredictionsScoreHigher) {
  auto sharp = *Matrix::FromRows(
      {{0.95, 0.05}, {0.05, 0.95}, {0.95, 0.05}, {0.05, 0.95}});
  auto mushy = *Matrix::FromRows(
      {{0.6, 0.4}, {0.4, 0.6}, {0.6, 0.4}, {0.4, 0.6}});
  const std::vector<int> labels = {0, 1, 0, 1};
  EXPECT_GT(*LeepFromPredictions(sharp, labels, 2),
            *LeepFromPredictions(mushy, labels, 2));
}

TEST(LeepTest, InputValidation) {
  auto predictions = *Matrix::FromRows({{0.5, 0.5}});
  EXPECT_TRUE(LeepFromPredictions(Matrix(), {}, 2)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(LeepFromPredictions(predictions, {0, 1}, 2)
                  .status()
                  .IsInvalidArgument());  // Size mismatch.
  EXPECT_TRUE(LeepFromPredictions(predictions, {0}, 1)
                  .status()
                  .IsInvalidArgument());  // Too few labels.
  EXPECT_TRUE(
      LeepFromPredictions(predictions, {5}, 2).status().IsOutOfRange());
  EXPECT_TRUE(
      LeepFromPredictions(predictions, {-1}, 2).status().IsOutOfRange());
}

TEST(LeepScorerTest, EndToEndOnSimulatedModel) {
  ModelSpec model_spec;
  model_spec.name = "leep/aligned";
  model_spec.capability = 0.7;
  model_spec.pretrain_tags = {"english", "books"};
  model_spec.finetune_tags = {"english", "nli"};
  model_spec.num_source_labels = 3;
  auto aligned = *PretrainedModel::Create(model_spec);

  model_spec.name = "leep/misaligned";
  model_spec.capability = 0.3;
  model_spec.pretrain_tags = {"arabic", "web"};
  model_spec.finetune_tags = {"arabic", "poetry"};
  auto misaligned = *PretrainedModel::Create(model_spec);

  DatasetSpec target_spec;
  target_spec.name = "leep-target";
  target_spec.num_labels = 3;
  target_spec.tags = {"english", "nli"};
  target_spec.num_examples = 120;
  auto target = *Dataset::Create(target_spec);

  LeepScorer scorer;
  EXPECT_EQ(scorer.name(), "leep");
  auto aligned_score = scorer.Score(aligned, target);
  auto misaligned_score = scorer.Score(misaligned, target);
  ASSERT_TRUE(aligned_score.ok());
  ASSERT_TRUE(misaligned_score.ok());
  EXPECT_GT(*aligned_score, *misaligned_score);
}

}  // namespace
}  // namespace tps
