#include "transfer/logme.h"


#include <cmath>
#include <gtest/gtest.h>

#include "util/rng.h"

namespace tps {
namespace {

/// Features with class structure: class c lives near e_c * scale.
Matrix SeparableFeatures(size_t n, int num_classes, double noise,
                         std::vector<int>* labels, uint64_t seed) {
  Rng rng(seed);
  Matrix features(n, static_cast<size_t>(num_classes) + 2);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i) % num_classes;
    (*labels)[i] = label;
    for (size_t d = 0; d < features.cols(); ++d) {
      features.At(i, d) = noise * rng.Normal();
    }
    features.At(i, static_cast<size_t>(label)) += 3.0;
  }
  return features;
}

TEST(LogMeTest, SeparableFeaturesBeatNoise) {
  std::vector<int> labels;
  const Matrix good = SeparableFeatures(60, 3, 0.1, &labels, 1);
  auto good_score = LogMeFromFeatures(good, labels, 3);
  ASSERT_TRUE(good_score.ok());

  std::vector<int> noise_labels;
  const Matrix noise = SeparableFeatures(60, 3, 0.1, &noise_labels, 2);
  // Shuffle labels to destroy the feature-label relationship.
  Rng rng(3);
  rng.Shuffle(noise_labels);
  auto noise_score = LogMeFromFeatures(noise, noise_labels, 3);
  ASSERT_TRUE(noise_score.ok());
  EXPECT_GT(*good_score, *noise_score);
}

TEST(LogMeTest, LessNoiseScoresHigher) {
  std::vector<int> labels;
  const Matrix crisp = SeparableFeatures(60, 3, 0.05, &labels, 5);
  const Matrix fuzzy = SeparableFeatures(60, 3, 1.5, &labels, 5);
  EXPECT_GT(*LogMeFromFeatures(crisp, labels, 3),
            *LogMeFromFeatures(fuzzy, labels, 3));
}

TEST(LogMeTest, DeterministicForSameInput) {
  std::vector<int> labels;
  const Matrix features = SeparableFeatures(40, 2, 0.2, &labels, 9);
  EXPECT_DOUBLE_EQ(*LogMeFromFeatures(features, labels, 2),
                   *LogMeFromFeatures(features, labels, 2));
}

TEST(LogMeTest, HandlesConstantFeatureColumnWithoutNan) {
  std::vector<int> labels;
  Matrix features = SeparableFeatures(30, 2, 0.2, &labels, 13);
  for (size_t i = 0; i < features.rows(); ++i) {
    features.At(i, features.cols() - 1) = 1.0;
  }
  auto score = LogMeFromFeatures(features, labels, 2);
  ASSERT_TRUE(score.ok());
  EXPECT_FALSE(std::isnan(*score));
}

TEST(LogMeTest, InputValidation) {
  std::vector<int> labels = {0, 1};
  auto features = *Matrix::FromRows({{1.0}, {2.0}});
  EXPECT_TRUE(
      LogMeFromFeatures(Matrix(), {}, 2).status().IsInvalidArgument());
  EXPECT_TRUE(LogMeFromFeatures(features, {0}, 2)
                  .status()
                  .IsInvalidArgument());  // Size mismatch.
  EXPECT_TRUE(LogMeFromFeatures(features, labels, 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      LogMeFromFeatures(features, {0, 7}, 2).status().IsOutOfRange());
}

}  // namespace
}  // namespace tps
