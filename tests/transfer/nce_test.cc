#include "transfer/nce.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tps {
namespace {

TEST(NceTest, PerfectMappingScoresZero) {
  auto predictions = *Matrix::FromRows({{0.9, 0.1}, {0.1, 0.9}, {0.8, 0.2}});
  const std::vector<int> labels = {0, 1, 0};
  auto score = NceFromPredictions(predictions, labels, 2);
  ASSERT_TRUE(score.ok());
  EXPECT_NEAR(*score, 0.0, 1e-12);  // -H(Y|Z) with deterministic mapping.
}

TEST(NceTest, SingleSourceLabelGivesLabelEntropy) {
  // All examples map to the same source label, so H(Y|Z) = H(Y).
  auto predictions =
      *Matrix::FromRows({{1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}});
  const std::vector<int> labels = {0, 1, 0, 1};
  auto score = NceFromPredictions(predictions, labels, 2);
  ASSERT_TRUE(score.ok());
  EXPECT_NEAR(*score, std::log(0.5), 1e-12);
}

TEST(NceTest, HandComputedMixedCase) {
  // z=0 gets labels {0, 0, 1}; z=1 gets {1}.
  auto predictions = *Matrix::FromRows(
      {{0.9, 0.1}, {0.8, 0.2}, {0.6, 0.4}, {0.2, 0.8}});
  const std::vector<int> labels = {0, 0, 1, 1};
  // H(Y|Z=0) = -(2/3 log 2/3 + 1/3 log 1/3); P(z=0) = 3/4; H(Y|Z=1) = 0.
  const double h0 = -(2.0 / 3.0 * std::log(2.0 / 3.0) +
                      1.0 / 3.0 * std::log(1.0 / 3.0));
  const double expected = -(0.75 * h0);
  auto score = NceFromPredictions(predictions, labels, 2);
  ASSERT_TRUE(score.ok());
  EXPECT_NEAR(*score, expected, 1e-12);
}

TEST(NceTest, BoundedByLabelEntropy) {
  auto predictions = *Matrix::FromRows(
      {{0.4, 0.6}, {0.6, 0.4}, {0.5, 0.5}, {0.3, 0.7}});
  auto score = NceFromPredictions(predictions, {0, 1, 1, 0}, 2);
  ASSERT_TRUE(score.ok());
  EXPECT_LE(*score, 1e-12);
  EXPECT_GE(*score, std::log(0.5) - 1e-12);
}

TEST(NceTest, InputValidation) {
  auto predictions = *Matrix::FromRows({{0.5, 0.5}});
  EXPECT_TRUE(
      NceFromPredictions(Matrix(), {}, 2).status().IsInvalidArgument());
  EXPECT_TRUE(NceFromPredictions(predictions, {0, 1}, 2)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(NceFromPredictions(predictions, {0}, 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      NceFromPredictions(predictions, {3}, 2).status().IsOutOfRange());
}

}  // namespace
}  // namespace tps
