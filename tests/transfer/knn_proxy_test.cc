#include "transfer/knn_proxy.h"

#include <gtest/gtest.h>

#include "transfer/proxy_scorer.h"
#include "util/rng.h"

namespace tps {
namespace {

Matrix ClusteredFeatures(size_t n, int num_classes, double noise,
                         std::vector<int>* labels, uint64_t seed) {
  Rng rng(seed);
  Matrix features(n, 4);
  labels->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i) % num_classes;
    (*labels)[i] = label;
    for (size_t d = 0; d < 4; ++d) features.At(i, d) = noise * rng.Normal();
    features.At(i, 0) += 5.0 * label;
  }
  return features;
}

TEST(KnnProxyTest, WellSeparatedClustersScoreHigh) {
  std::vector<int> labels;
  const Matrix features = ClusteredFeatures(60, 3, 0.1, &labels, 1);
  auto acc = KnnLeaveOneOutAccuracy(features, labels, 5);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
}

TEST(KnnProxyTest, ShuffledLabelsScoreNearChance) {
  std::vector<int> labels;
  const Matrix features = ClusteredFeatures(90, 3, 0.1, &labels, 2);
  Rng rng(3);
  rng.Shuffle(labels);
  auto acc = KnnLeaveOneOutAccuracy(features, labels, 5);
  ASSERT_TRUE(acc.ok());
  EXPECT_LT(*acc, 0.6);
}

TEST(KnnProxyTest, KEqualsOneUsesNearestNeighbour) {
  // Two interleaved points per class: with k=1, each point's nearest
  // neighbour is its twin, giving perfect accuracy.
  auto features = *Matrix::FromRows({{0.0}, {0.1}, {5.0}, {5.1}});
  const std::vector<int> labels = {0, 0, 1, 1};
  auto acc = KnnLeaveOneOutAccuracy(features, labels, 1);
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc, 1.0);
}

TEST(KnnProxyTest, KClampedToAvailableNeighbours) {
  auto features = *Matrix::FromRows({{0.0}, {0.1}, {5.0}});
  const std::vector<int> labels = {0, 0, 1};
  auto acc = KnnLeaveOneOutAccuracy(features, labels, 50);
  ASSERT_TRUE(acc.ok());  // k clamps to n-1 = 2.
}

TEST(KnnProxyTest, InputValidation) {
  auto features = *Matrix::FromRows({{0.0}, {1.0}});
  EXPECT_TRUE(KnnLeaveOneOutAccuracy(*Matrix::FromRows({{0.0}}), {0}, 1)
                  .status()
                  .IsInvalidArgument());  // < 2 examples.
  EXPECT_TRUE(KnnLeaveOneOutAccuracy(features, {0}, 1)
                  .status()
                  .IsInvalidArgument());  // Size mismatch.
  EXPECT_TRUE(KnnLeaveOneOutAccuracy(features, {0, 1}, 0)
                  .status()
                  .IsInvalidArgument());  // k < 1.
}

TEST(ProxyScorerTest, FactoryKnowsAllScorers) {
  for (const char* name : {"leep", "nce", "logme", "knn"}) {
    auto scorer = MakeProxyScorer(name);
    ASSERT_TRUE(scorer.ok()) << name;
    EXPECT_EQ((*scorer)->name(), name);
  }
  EXPECT_TRUE(MakeProxyScorer("bogus").status().IsInvalidArgument());
}

TEST(ProxyScorerTest, MinMaxNormalize) {
  EXPECT_EQ(MinMaxNormalize({2.0, 4.0, 3.0}),
            (std::vector<double>{0.0, 1.0, 0.5}));
  EXPECT_EQ(MinMaxNormalize({7.0, 7.0}), (std::vector<double>{0.5, 0.5}));
  EXPECT_TRUE(MinMaxNormalize({}).empty());
  EXPECT_EQ(MinMaxNormalize({-1.0}), (std::vector<double>{0.5}));
}

}  // namespace
}  // namespace tps
