// Differential kernel harness: every vectorized (SoA / batched) kernel on
// the proxy-scoring hot path is pitted against the retained reference
// implementation over randomized shapes and adversarial edge cases, and
// the results must be BIT-IDENTICAL (EXPECT_EQ on doubles, not NEAR).
// This is the contract that lets the batched kernels ship as the default
// without touching a single golden snapshot. Runs the comparisons serially
// and under a ThreadPool (the `kernels` label joins the sanitizer matrix,
// so TSan sweeps the concurrent section).

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "clustering/distance.h"
#include "data/dataset.h"
#include "matrix/matrix.h"
#include "matrix/vector_ops.h"
#include "model/pretrained_model.h"
#include "transfer/kernels.h"
#include "transfer/knn_proxy.h"
#include "transfer/leep.h"
#include "transfer/logme.h"
#include "transfer/nce.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tps {
namespace {

// --- Shared randomized-input generator -------------------------------------

struct ProxyInputs {
  Matrix predictions;       // Row-stochastic n x Z.
  Matrix features;          // The pre-softmax logits, n x Z.
  std::vector<int> labels;  // In [0, num_target).
  int num_target = 2;
};

/// Randomized proxy inputs. `logit_scale` stretches the logits before the
/// softmax: at ~40 the off-max probabilities land many orders of magnitude
/// below 1 (denormal-adjacent), stressing the accumulation-order proofs
/// exactly where floating point is least forgiving. Degenerate shapes
/// (n == 0, Z == 1, num_target == 1) are legal inputs here; the wrappers
/// decide what is an error, and the harness asserts BOTH kernel modes
/// agree on that too.
ProxyInputs MakeInputs(Rng& rng, size_t n, size_t z, int num_target,
                       double logit_scale) {
  ProxyInputs inputs;
  inputs.num_target = num_target;
  inputs.predictions = Matrix(n, z);
  inputs.features = Matrix(n, z);
  inputs.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> logits(z);
    for (size_t j = 0; j < z; ++j) {
      logits[j] = logit_scale * rng.Normal();
      inputs.features.At(i, j) = logits[j];
    }
    const std::vector<double> probs = vec::Softmax(logits);
    for (size_t j = 0; j < z; ++j) inputs.predictions.At(i, j) = probs[j];
    inputs.labels[i] =
        num_target > 0 ? static_cast<int>(rng.UniformInt(
                             static_cast<uint64_t>(num_target)))
                       : 0;
  }
  return inputs;
}

/// The shape sweep every differential case runs: small primes, powers of
/// two, single example, single source class, and a shape where
/// num_target > n so some target labels never occur.
struct Shape {
  size_t n;
  size_t z;
  int num_target;
};

const std::vector<Shape>& Shapes() {
  static const std::vector<Shape>* shapes = new std::vector<Shape>{
      {1, 1, 2},  {1, 4, 2},  {2, 2, 2},   {3, 5, 2},   {7, 3, 4},
      {16, 8, 3}, {17, 1, 2}, {31, 16, 7}, {64, 12, 5}, {5, 6, 11},
  };
  return *shapes;
}

/// Both kernel modes must produce the same ok-bit, the same status code on
/// error, and bit-identical values on success.
template <typename Fn>
void ExpectModesAgree(Fn&& run, const std::string& what) {
  const StatusOr<double> reference = run(kernels::KernelMode::kReference);
  const StatusOr<double> batched = run(kernels::KernelMode::kBatched);
  ASSERT_EQ(reference.ok(), batched.ok()) << what;
  if (reference.ok()) {
    EXPECT_EQ(*reference, *batched) << what;
  } else {
    EXPECT_EQ(reference.status().code(), batched.status().code()) << what;
  }
}

std::string ShapeName(const Shape& shape, double scale, uint64_t seed) {
  return "n=" + std::to_string(shape.n) + " z=" + std::to_string(shape.z) +
         " L=" + std::to_string(shape.num_target) +
         " scale=" + std::to_string(scale) + " seed=" + std::to_string(seed);
}

// --- Proxy-score kernels ----------------------------------------------------

class KernelEquivalenceTest : public ::testing::TestWithParam<double> {};

TEST_P(KernelEquivalenceTest, LeepBatchedIsBitIdentical) {
  const double scale = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    for (const Shape& shape : Shapes()) {
      Rng rng(seed * 7919 + shape.n);
      const ProxyInputs in =
          MakeInputs(rng, shape.n, shape.z, shape.num_target, scale);
      ExpectModesAgree(
          [&](kernels::KernelMode mode) {
            return LeepFromPredictions(in.predictions, in.labels,
                                       in.num_target, mode);
          },
          "LEEP " + ShapeName(shape, scale, seed));
    }
  }
}

TEST_P(KernelEquivalenceTest, NceBatchedIsBitIdentical) {
  const double scale = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    for (const Shape& shape : Shapes()) {
      Rng rng(seed * 104729 + shape.z);
      const ProxyInputs in =
          MakeInputs(rng, shape.n, shape.z, shape.num_target, scale);
      ExpectModesAgree(
          [&](kernels::KernelMode mode) {
            return NceFromPredictions(in.predictions, in.labels,
                                      in.num_target, mode);
          },
          "NCE " + ShapeName(shape, scale, seed));
    }
  }
}

TEST_P(KernelEquivalenceTest, LogMeBatchedIsBitIdentical) {
  const double scale = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    for (const Shape& shape : Shapes()) {
      Rng rng(seed * 1299709 + shape.n * 31 + shape.z);
      const ProxyInputs in =
          MakeInputs(rng, shape.n, shape.z, shape.num_target, scale);
      ExpectModesAgree(
          [&](kernels::KernelMode mode) {
            return LogMeFromFeatures(in.features, in.labels, in.num_target,
                                     mode);
          },
          "LogME " + ShapeName(shape, scale, seed));
    }
  }
}

TEST_P(KernelEquivalenceTest, KnnBatchedIsBitIdentical) {
  const double scale = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    for (const Shape& shape : Shapes()) {
      for (int k : {1, 3, 5, 100}) {  // 100 > n exercises the clamp.
        Rng rng(seed * 15485863 + shape.n + static_cast<uint64_t>(k));
        const ProxyInputs in =
            MakeInputs(rng, shape.n, shape.z, shape.num_target, scale);
        ExpectModesAgree(
            [&](kernels::KernelMode mode) {
              return KnnLeaveOneOutAccuracy(in.features, in.labels, k, mode);
            },
            "kNN k=" + std::to_string(k) + " " +
                ShapeName(shape, scale, seed));
      }
    }
  }
}

// Moderate logits, and extreme logits whose softmax probabilities are
// denormal-adjacent.
INSTANTIATE_TEST_SUITE_P(LogitScales, KernelEquivalenceTest,
                         ::testing::Values(2.0, 40.0));

// --- Error-path equivalence -------------------------------------------------

TEST(KernelEquivalenceEdgeTest, DegenerateInputsFailIdenticallyInBothModes) {
  Rng rng(42);
  // Empty batch.
  const ProxyInputs empty = MakeInputs(rng, 0, 3, 2, 2.0);
  // Target class count of 1 (LEEP/NCE reject; the harness only demands
  // both modes agree).
  const ProxyInputs one_class = MakeInputs(rng, 8, 3, 1, 2.0);
  // Single example (kNN needs a neighbour).
  const ProxyInputs lonely = MakeInputs(rng, 1, 3, 2, 2.0);
  // Mismatched label vector.
  const ProxyInputs ragged = [&] {
    ProxyInputs in = MakeInputs(rng, 6, 3, 2, 2.0);
    in.labels.pop_back();
    return in;
  }();

  for (const ProxyInputs* in : {&empty, &one_class, &lonely, &ragged}) {
    ExpectModesAgree(
        [&](kernels::KernelMode mode) {
          return LeepFromPredictions(in->predictions, in->labels,
                                     in->num_target, mode);
        },
        "LEEP edge");
    ExpectModesAgree(
        [&](kernels::KernelMode mode) {
          return NceFromPredictions(in->predictions, in->labels,
                                    in->num_target, mode);
        },
        "NCE edge");
    ExpectModesAgree(
        [&](kernels::KernelMode mode) {
          return LogMeFromFeatures(in->features, in->labels, in->num_target,
                                   mode);
        },
        "LogME edge");
    ExpectModesAgree(
        [&](kernels::KernelMode mode) {
          return KnnLeaveOneOutAccuracy(in->features, in->labels, 3, mode);
        },
        "kNN edge");
  }
}

TEST(KernelEquivalenceEdgeTest, TiedAndDuplicateRowsAgree) {
  // Exact duplicates and perfect argmax ties are where an accidental
  // reordering of comparisons would first change a result (NCE's first-max
  // rule, kNN's distance-then-index tie break).
  auto predictions = *Matrix::FromRows({{0.25, 0.25, 0.25, 0.25},
                                        {0.25, 0.25, 0.25, 0.25},
                                        {0.4, 0.4, 0.1, 0.1},
                                        {0.4, 0.4, 0.1, 0.1},
                                        {0.1, 0.4, 0.4, 0.1}});
  const std::vector<int> labels = {0, 1, 0, 1, 1};
  ExpectModesAgree(
      [&](kernels::KernelMode mode) {
        return NceFromPredictions(predictions, labels, 2, mode);
      },
      "NCE ties");
  ExpectModesAgree(
      [&](kernels::KernelMode mode) {
        return LeepFromPredictions(predictions, labels, 2, mode);
      },
      "LEEP ties");
  ExpectModesAgree(
      [&](kernels::KernelMode mode) {
        return KnnLeaveOneOutAccuracy(predictions, labels, 2, mode);
      },
      "kNN duplicate rows");
}

// --- Forward-pass (SoA) and vector-helper pairs -----------------------------

StatusOr<Dataset> MakeTarget(int num_labels, int num_examples) {
  DatasetSpec spec;
  spec.name = "kernel-diff-target";
  spec.num_labels = num_labels;
  spec.num_examples = num_examples;
  spec.tags = {"news", "reviews"};
  return Dataset::Create(spec);
}

StatusOr<PretrainedModel> MakeModel(int num_source_labels) {
  ModelSpec spec;
  spec.name = "kernel-diff-model";
  spec.capability = 0.7;
  spec.num_source_labels = num_source_labels;
  spec.pretrain_tags = {"english", "news"};
  return PretrainedModel::Create(spec);
}

void ExpectMatricesBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a.At(i, j), b.At(i, j)) << "(" << i << ", " << j << ")";
    }
  }
}

TEST(ForwardPassEquivalenceTest, SoAForwardPassMatchesReference) {
  for (int num_labels : {2, 3, 7}) {
    for (int source_labels : {2, 5, 16}) {
      auto target = MakeTarget(num_labels, 64);
      ASSERT_TRUE(target.ok());
      auto model = MakeModel(source_labels);
      ASSERT_TRUE(model.ok());

      auto features = model->ExtractFeatures(*target);
      auto features_ref = model->ExtractFeaturesReference(*target);
      ASSERT_TRUE(features.ok());
      ASSERT_TRUE(features_ref.ok());
      ExpectMatricesBitIdentical(*features, *features_ref);

      auto predictions = model->PredictDistributions(*target);
      auto predictions_ref = model->PredictDistributionsReference(*target);
      ASSERT_TRUE(predictions.ok());
      ASSERT_TRUE(predictions_ref.ok());
      ExpectMatricesBitIdentical(*predictions, *predictions_ref);
    }
  }
}

TEST(VectorHelperEquivalenceTest, InPlaceHelpersMatchAllocatingOnes) {
  Rng rng(7);
  for (size_t n : {size_t{1}, size_t{2}, size_t{5}, size_t{64}}) {
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Normal() * 3.0;
      b[i] = rng.Normal() * 3.0;
    }

    // SoftmaxInPlace vs Softmax.
    std::vector<double> in_place = a;
    vec::SoftmaxInPlace(in_place.data(), in_place.size());
    EXPECT_EQ(in_place, vec::Softmax(a));

    // MeanOfTopKInPlace vs MeanOfTopK.
    for (size_t k : {size_t{0}, size_t{1}, size_t{3}, n, n + 5}) {
      std::vector<double> scratch = a;
      EXPECT_EQ(vec::MeanOfTopKInPlace(scratch.data(), scratch.size(), k),
                vec::MeanOfTopK(a, k));
    }

    // AbsDiffInto vs AbsDiff.
    std::vector<double> out(n);
    vec::AbsDiffInto(a.data(), b.data(), n, out.data());
    EXPECT_EQ(out, vec::AbsDiff(a, b));

    // Scratch-based PerformanceSimilarity vs the vector overload.
    std::vector<double> scratch;
    for (size_t top_k : {size_t{1}, size_t{3}, n}) {
      EXPECT_EQ(
          PerformanceSimilarity(a.data(), b.data(), n, top_k, scratch),
          PerformanceSimilarity(a, b, top_k));
    }
  }
  // Empty input.
  std::vector<double> scratch;
  EXPECT_EQ(vec::MeanOfTopKInPlace(scratch.data(), 0, 3), 0.0);
  vec::SoftmaxInPlace(scratch.data(), 0);  // Must not crash.
}

// --- Scorer batching and parallel execution ---------------------------------

TEST(ScoreBatchEquivalenceTest, ScoreBatchMatchesScoreLoop) {
  auto target = MakeTarget(3, 48);
  ASSERT_TRUE(target.ok());
  std::vector<PretrainedModel> models;
  for (int s : {3, 5, 9}) {
    auto model = MakeModel(s);
    ASSERT_TRUE(model.ok());
    models.push_back(std::move(*model));
  }
  std::vector<const PretrainedModel*> pointers;
  for (const PretrainedModel& m : models) pointers.push_back(&m);

  for (const char* name : {"leep", "nce", "logme", "knn"}) {
    for (kernels::KernelMode mode :
         {kernels::KernelMode::kReference, kernels::KernelMode::kBatched}) {
      auto scorer = MakeProxyScorer(name, mode);
      ASSERT_TRUE(scorer.ok());
      auto batch = (*scorer)->ScoreBatch(pointers, *target);
      ASSERT_TRUE(batch.ok()) << name;
      ASSERT_EQ(batch->size(), pointers.size());
      for (size_t i = 0; i < pointers.size(); ++i) {
        auto single = (*scorer)->Score(*pointers[i], *target);
        ASSERT_TRUE(single.ok()) << name;
        EXPECT_EQ((*batch)[i], *single)
            << name << " model " << i << " mode "
            << kernels::ToString(mode);
      }
    }
  }
}

TEST(ParallelKernelEquivalenceTest, ConcurrentBatchedRunsStayBitIdentical) {
  // The batched kernels keep no shared mutable state; N threads computing
  // the same scores must agree bit-for-bit with the serial answer (and
  // TSan must stay quiet — this test rides the sanitizer matrix).
  Rng rng(1234);
  const ProxyInputs in = MakeInputs(rng, 48, 9, 4, 2.0);

  const StatusOr<double> leep_serial =
      LeepFromPredictions(in.predictions, in.labels, in.num_target,
                          kernels::KernelMode::kBatched);
  const StatusOr<double> nce_serial =
      NceFromPredictions(in.predictions, in.labels, in.num_target,
                         kernels::KernelMode::kBatched);
  const StatusOr<double> logme_serial =
      LogMeFromFeatures(in.features, in.labels, in.num_target,
                        kernels::KernelMode::kBatched);
  const StatusOr<double> knn_serial =
      KnnLeaveOneOutAccuracy(in.features, in.labels, 5,
                             kernels::KernelMode::kBatched);
  ASSERT_TRUE(leep_serial.ok() && nce_serial.ok() && logme_serial.ok() &&
              knn_serial.ok());

  constexpr size_t kTrials = 32;
  std::vector<double> leep(kTrials), nce(kTrials), logme(kTrials),
      knn(kTrials);
  ThreadPool pool(4);
  pool.ParallelFor(kTrials, [&](size_t t) {
    leep[t] = *LeepFromPredictions(in.predictions, in.labels, in.num_target,
                                   kernels::KernelMode::kBatched);
    nce[t] = *NceFromPredictions(in.predictions, in.labels, in.num_target,
                                 kernels::KernelMode::kBatched);
    logme[t] = *LogMeFromFeatures(in.features, in.labels, in.num_target,
                                  kernels::KernelMode::kBatched);
    knn[t] = *KnnLeaveOneOutAccuracy(in.features, in.labels, 5,
                                     kernels::KernelMode::kBatched);
  });
  for (size_t t = 0; t < kTrials; ++t) {
    EXPECT_EQ(leep[t], *leep_serial);
    EXPECT_EQ(nce[t], *nce_serial);
    EXPECT_EQ(logme[t], *logme_serial);
    EXPECT_EQ(knn[t], *knn_serial);
  }
}

}  // namespace
}  // namespace tps
