// Zero-downtime artifact hot swap: Reload() publishes a new version
// RCU-style while requests are in flight. The acceptance bar here is the
// ISSUE's: under >= 8 concurrent clients with reloads landing mid-flight,
// zero requests fail or drop, and every single response is bit-identical —
// selected model, accuracy, and the full epoch ledger — to an oracle
// service pinned at the version the request was admitted against. A
// request admitted at version V never observes state (proxy scores
// included) from version V+1.

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_clusterer.h"
#include "serve/artifact_slot.h"
#include "serve/service.h"
#include "util/metrics.h"

namespace tps {
namespace serve {
namespace {

class HotSwapTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    base_ = new ServiceArtifacts(
        *ServiceArtifacts::Build(TaskDomain::kNLP));
    // The reload payload must be observably different from the base so a
    // version-mixing bug cannot pass by accident: recluster the same zoo
    // into exactly three clusters (the base uses the threshold cut, which
    // yields a different representative set and hence different recall).
    ServiceArtifacts variant = *base_;
    ModelClusteringOptions coarse;
    coarse.num_clusters = 3;
    auto clustering = ClusterModels(variant.matrix, variant.zoo, coarse);
    ASSERT_TRUE(clustering.ok()) << clustering.status().ToString();
    variant.clustering = std::move(*clustering);
    variant_ = new ServiceArtifacts(std::move(variant));
    ASSERT_NE(base_->clustering.clusters.num_clusters,
              variant_->clustering.clusters.num_clusters)
        << "variant must differ from base or the mixing checks are vacuous";

    base_oracle_ = new std::map<std::string, SelectionResponse>(
        OracleAnswers(*base_));
    variant_oracle_ = new std::map<std::string, SelectionResponse>(
        OracleAnswers(*variant_));
  }

  /// Fresh copies — SelectionService::Create and Reload take ownership.
  static ServiceArtifacts Base() { return *base_; }
  static ServiceArtifacts Variant() { return *variant_; }

  static std::vector<std::string> TargetNames() {
    std::vector<std::string> names;
    for (const Dataset* target : base_->registry.Targets(TaskDomain::kNLP)) {
      names.push_back(target->name());
    }
    return names;
  }

  /// The ground truth for one artifact set: a single-threaded service
  /// answers every target once. Whatever the swapping service returns must
  /// match one of these maps exactly, keyed by the response's
  /// artifact_version.
  static std::map<std::string, SelectionResponse> OracleAnswers(
      const ServiceArtifacts& artifacts) {
    MetricsRegistry metrics;
    ServiceOptions options;
    options.worker_threads = 0;
    options.metrics = &metrics;
    auto service_or = SelectionService::Create(
        ServiceArtifacts(artifacts), options);
    EXPECT_TRUE(service_or.ok()) << service_or.status().ToString();
    std::map<std::string, SelectionResponse> answers;
    for (const Dataset* target :
         artifacts.registry.Targets(artifacts.domain)) {
      SelectionRequest request;
      request.target = target->name();
      answers[request.target] = (*service_or)->Handle(request);
      EXPECT_TRUE(answers[request.target].status.ok());
    }
    return answers;
  }

  static SelectionRequest Request(const std::string& target) {
    SelectionRequest request;
    request.target = target;
    return request;
  }

  /// Bit-identical answer check: model, accuracy, and the whole epoch
  /// ledger (training/inference/total) plus the per-stage survivor counts.
  /// EXPECT_EQ on the doubles deliberately — interpolating or re-deriving
  /// any of these from the wrong version must fail, not "be close".
  static void ExpectSameAnswer(const SelectionResponse& got,
                               const SelectionResponse& want) {
    ASSERT_TRUE(got.status.ok()) << got.status.ToString();
    EXPECT_EQ(got.selected_model, want.selected_model);
    EXPECT_EQ(got.selected_accuracy, want.selected_accuracy);
    EXPECT_EQ(got.training_epochs, want.training_epochs);
    EXPECT_EQ(got.inference_epochs, want.inference_epochs);
    EXPECT_EQ(got.total_epochs, want.total_epochs);
    EXPECT_EQ(got.survivors_per_stage, want.survivors_per_stage);
  }

  static const std::map<std::string, SelectionResponse>& OracleFor(
      uint64_t version) {
    // Versions 1 and 3 serve the base artifacts in these tests; version 2
    // serves the variant.
    return version == 2 ? *variant_oracle_ : *base_oracle_;
  }

  static ServiceArtifacts* base_;
  static ServiceArtifacts* variant_;
  static std::map<std::string, SelectionResponse>* base_oracle_;
  static std::map<std::string, SelectionResponse>* variant_oracle_;
};

ServiceArtifacts* HotSwapTest::base_ = nullptr;
ServiceArtifacts* HotSwapTest::variant_ = nullptr;
std::map<std::string, SelectionResponse>* HotSwapTest::base_oracle_ = nullptr;
std::map<std::string, SelectionResponse>* HotSwapTest::variant_oracle_ =
    nullptr;

TEST_F(HotSwapTest, SlotRetiresOldVersionOnlyAfterLastReaderDrops) {
  ArtifactSlot slot(std::make_shared<const ArtifactSnapshot>(Base(), 1));
  auto pinned = slot.Acquire();  // An "in-flight request" at version 1.
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_EQ(slot.version(), 1u);

  auto retired =
      slot.Publish(std::make_shared<const ArtifactSnapshot>(Variant(), 2));
  EXPECT_EQ(slot.version(), 2u);
  EXPECT_EQ(slot.Acquire()->version, 2u);
  // Publish hands back exactly the snapshot it displaced...
  ASSERT_NE(retired, nullptr);
  EXPECT_EQ(retired.get(), pinned.get());
  retired.reset();
  // ...and dropping it does NOT destroy version 1: the reader still pins
  // it. Under ASan a use-after-free here fails loudly.
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_EQ(pinned->artifacts.zoo.size(), base_->zoo.size());
}

TEST_F(HotSwapTest, ReloadSwapsAnswersAndBumpsVersion) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.worker_threads = 0;
  options.metrics = &metrics;
  auto service_or = SelectionService::Create(Base(), options);
  ASSERT_TRUE(service_or.ok());
  SelectionService& service = **service_or;

  const std::vector<std::string> targets = TargetNames();
  ASSERT_FALSE(targets.empty());
  for (const std::string& target : targets) {
    const SelectionResponse response = service.Handle(Request(target));
    EXPECT_EQ(response.artifact_version, 1u);
    ExpectSameAnswer(response, base_oracle_->at(target));
  }

  ASSERT_TRUE(service.Reload(Variant()).ok());
  EXPECT_EQ(service.artifact_version(), 2u);
  EXPECT_EQ(service.Stats().artifact_version, 2u);
  EXPECT_EQ(service.Stats().reloads, 1u);

  bool any_answer_changed = false;
  for (const std::string& target : targets) {
    const SelectionResponse response = service.Handle(Request(target));
    EXPECT_EQ(response.artifact_version, 2u);
    ExpectSameAnswer(response, variant_oracle_->at(target));
    const SelectionResponse& before = base_oracle_->at(target);
    const SelectionResponse& after = variant_oracle_->at(target);
    any_answer_changed |=
        before.selected_model != after.selected_model ||
        before.selected_accuracy != after.selected_accuracy ||
        before.survivors_per_stage != after.survivors_per_stage ||
        before.total_epochs != after.total_epochs;
  }
  // The swap must be observable end to end, otherwise the oracle
  // comparisons above prove nothing about version attribution.
  EXPECT_TRUE(any_answer_changed);
}

TEST_F(HotSwapTest, ReloadValidatesBeforePublishing) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.worker_threads = 0;
  options.metrics = &metrics;
  auto service_or = SelectionService::Create(Base(), options);
  ASSERT_TRUE(service_or.ok());
  SelectionService& service = **service_or;

  // Corrupt artifacts: one representative short of the cluster count.
  ServiceArtifacts bad = Base();
  ASSERT_FALSE(bad.clustering.representatives.empty());
  bad.clustering.representatives.pop_back();
  const Status status = service.Reload(std::move(bad));
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();

  // Nothing was published: still version 1, still serving base answers.
  EXPECT_EQ(service.artifact_version(), 1u);
  EXPECT_EQ(service.Stats().reloads, 0u);
  const SelectionResponse response = service.Handle(Request("mnli"));
  EXPECT_EQ(response.artifact_version, 1u);
  ExpectSameAnswer(response, base_oracle_->at("mnli"));
}

// A request admitted at version V runs entirely against V even when the
// reload lands while it sits dequeued-but-unstarted — and the proxy cache
// it fills under epoch V is invisible to the version-V+1 request that runs
// right after it on the same target (satellite e: the epoch tag in
// ProxyCacheKey, not wall-clock luck, is what keeps versions apart).
TEST_F(HotSwapTest, StragglerKeepsAdmissionVersionAndEpochsNeverMix) {
  std::promise<void> picked_up;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::atomic<bool> armed{true};

  MetricsRegistry metrics;
  ServiceOptions options;
  options.worker_threads = 1;
  options.metrics = &metrics;
  options.pre_handle_hook = [&] {
    if (armed.exchange(false)) {
      picked_up.set_value();
      release_future.wait();
    }
  };
  auto service_or = SelectionService::Create(Base(), options);
  ASSERT_TRUE(service_or.ok());
  SelectionService& service = **service_or;

  // The straggler: admitted (snapshot acquired) at version 1, then held by
  // the hook before its pipeline starts.
  std::future<SelectionResponse> straggler = service.Submit(Request("mnli"));
  picked_up.get_future().wait();

  // Reload lands while the straggler is parked: version 2 published.
  ASSERT_TRUE(service.Reload(Variant()).ok());
  ASSERT_EQ(service.artifact_version(), 2u);

  // Same target, admitted AFTER the reload — queued behind the straggler
  // on the single worker, so it runs after version-1 scores were cached.
  std::future<SelectionResponse> fresh = service.Submit(Request("mnli"));
  release.set_value();

  const SelectionResponse straggler_response = straggler.get();
  EXPECT_EQ(straggler_response.artifact_version, 1u);
  ExpectSameAnswer(straggler_response, base_oracle_->at("mnli"));

  const SelectionResponse fresh_response = fresh.get();
  EXPECT_EQ(fresh_response.artifact_version, 2u);
  ExpectSameAnswer(fresh_response, variant_oracle_->at("mnli"));
  // The cache now holds the straggler's epoch-1 entries for this exact
  // target. The epoch tag must make them invisible: everything the
  // version-2 request scored was a miss.
  EXPECT_EQ(fresh_response.cache_hits, 0u);
  EXPECT_GT(fresh_response.cache_misses, 0u);
}

// The ISSUE's acceptance test: >= 8 concurrent clients in a closed Submit
// loop, two Reloads landing mid-flight (base -> variant -> base). Zero
// requests fail, zero are dropped (every future resolves), and every
// response matches the oracle for its own artifact_version bit for bit.
TEST_F(HotSwapTest, SwapUnderLoadNeverDropsOrMixesVersions) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.worker_threads = 4;
  options.metrics = &metrics;
  auto service_or = SelectionService::Create(Base(), options);
  ASSERT_TRUE(service_or.ok());
  SelectionService& service = **service_or;

  const std::vector<std::string> targets = TargetNames();
  ASSERT_FALSE(targets.empty());

  constexpr int kClients = 8;
  std::atomic<bool> stop{false};
  std::atomic<int> warmed{0};
  std::vector<std::vector<SelectionResponse>> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      int i = 0;
      while (true) {
        SelectionRequest request =
            Request(targets[(c + i) % targets.size()]);
        responses[c].push_back(service.Submit(std::move(request)).get());
        if (++i == 1) warmed.fetch_add(1);
        // Check AFTER completing a request so every client has at least
        // one answer admitted after the final reload was requested.
        if (stop.load()) break;
      }
    });
  }

  // Both reloads land while all eight clients are provably mid-loop:
  // wait until each has completed a request, and stop them only after.
  while (warmed.load() < kClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(service.Reload(Variant()).ok());  // -> version 2
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  ASSERT_TRUE(service.Reload(Base()).ok());  // -> version 3 (base again)
  stop.store(true);
  for (std::thread& client : clients) client.join();

  // Deterministic post-swap probe so "saw >= 2 versions" cannot depend on
  // scheduler timing.
  const SelectionResponse probe = service.Handle(Request(targets[0]));
  EXPECT_EQ(probe.artifact_version, 3u);
  ExpectSameAnswer(probe, base_oracle_->at(targets[0]));

  size_t total = 0;
  std::set<uint64_t> versions_seen = {probe.artifact_version};
  for (const auto& client_responses : responses) {
    for (const SelectionResponse& response : client_responses) {
      ++total;
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      ASSERT_GE(response.artifact_version, 1u);
      ASSERT_LE(response.artifact_version, 3u);
      versions_seen.insert(response.artifact_version);
      // The one check everything hangs on: the answer is EXACTLY the
      // oracle's for the version this request was admitted against.
      ExpectSameAnswer(response,
                       OracleFor(response.artifact_version).at(response.target));
    }
  }
  // Every client completed at least one request before the first reload
  // and one after stop was set.
  EXPECT_GE(total, static_cast<size_t>(kClients) * 2);
  // Version 1 (pre-reload warmup) and version 3 (the probe) are both
  // guaranteed observed.
  EXPECT_GE(versions_seen.size(), 2u);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.reloads, 2u);
  EXPECT_EQ(stats.artifact_version, 3u);
  EXPECT_EQ(stats.rejected, 0u);  // <= 8 outstanding vs. queue of 64.
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.deadline_exceeded, 0u);
}

}  // namespace
}  // namespace serve
}  // namespace tps
