// POSIX socket wrappers: Unix + TCP listen/connect, line framing across
// partial reads, EOF handling, and Shutdown() unblocking a parked Accept.

#include "util/socket.h"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace tps {
namespace {

std::string TempSocketPath(const std::string& tag) {
  return testing::TempDir() + "/tps_socket_test_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(SocketTest, UnixRoundTrip) {
  const std::string path = TempSocketPath("roundtrip");
  auto server = ServerSocket::ListenUnix(path);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_EQ(server->unix_path(), path);

  std::thread client_thread([&path] {
    auto client = ConnectUnix(path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client->SendAll("hello server\n").ok());
    std::string buffer;
    auto reply = client->RecvLine(&buffer);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(*reply, "hello client");
  });

  auto conn = server->Accept();
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  std::string buffer;
  auto line = conn->RecvLine(&buffer);
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(*line, "hello server");  // Newline stripped.
  ASSERT_TRUE(conn->SendAll("hello client\n").ok());
  client_thread.join();
}

TEST(SocketTest, TcpAutoAssignsPort) {
  auto server = ServerSocket::ListenTcp(0);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_GT(server->port(), 0);

  std::thread client_thread([port = server->port()] {
    auto client = ConnectTcp(port);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client->SendAll("over tcp\n").ok());
  });
  auto conn = server->Accept();
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  std::string buffer;
  auto line = conn->RecvLine(&buffer);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "over tcp");
  client_thread.join();
}

TEST(SocketTest, RecvLineSplitsMultipleLinesFromOneWrite) {
  const std::string path = TempSocketPath("multiline");
  auto server = ServerSocket::ListenUnix(path);
  ASSERT_TRUE(server.ok());

  std::thread client_thread([&path] {
    auto client = ConnectUnix(path);
    ASSERT_TRUE(client.ok());
    // Three lines and the start of a fourth in a single send.
    ASSERT_TRUE(client->SendAll("one\ntwo\nthree\nfour-part").ok());
    ASSERT_TRUE(client->SendAll("ial\n").ok());  // Finish line four.
  });

  auto conn = server->Accept();
  ASSERT_TRUE(conn.ok());
  std::string buffer;
  EXPECT_EQ(*conn->RecvLine(&buffer), "one");
  EXPECT_EQ(*conn->RecvLine(&buffer), "two");
  EXPECT_EQ(*conn->RecvLine(&buffer), "three");
  // The fourth line arrives across two writes; RecvLine stitches it.
  EXPECT_EQ(*conn->RecvLine(&buffer), "four-partial");
  client_thread.join();
}

TEST(SocketTest, CleanEofIsOutOfRange) {
  const std::string path = TempSocketPath("eof");
  auto server = ServerSocket::ListenUnix(path);
  ASSERT_TRUE(server.ok());

  std::thread client_thread([&path] {
    auto client = ConnectUnix(path);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->SendAll("last full line\n").ok());
    // Destructor closes: clean EOF after a complete line.
  });
  auto conn = server->Accept();
  ASSERT_TRUE(conn.ok());
  std::string buffer;
  EXPECT_EQ(*conn->RecvLine(&buffer), "last full line");
  auto eof = conn->RecvLine(&buffer);
  EXPECT_FALSE(eof.ok());
  EXPECT_TRUE(eof.status().IsOutOfRange()) << eof.status().ToString();
  client_thread.join();
}

TEST(SocketTest, MidLineEofReturnsPartialLine) {
  const std::string path = TempSocketPath("partial");
  auto server = ServerSocket::ListenUnix(path);
  ASSERT_TRUE(server.ok());

  std::thread client_thread([&path] {
    auto client = ConnectUnix(path);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->SendAll("no newline here").ok());
  });
  auto conn = server->Accept();
  ASSERT_TRUE(conn.ok());
  std::string buffer;
  auto line = conn->RecvLine(&buffer);
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(*line, "no newline here");
  client_thread.join();
}

TEST(SocketTest, RecvLineCapDiscardsOversizedLineAndKeepsFraming) {
  const std::string path = TempSocketPath("cap");
  auto server = ServerSocket::ListenUnix(path);
  ASSERT_TRUE(server.ok());

  std::thread client_thread([&path] {
    auto client = ConnectUnix(path);
    ASSERT_TRUE(client.ok());
    // One line far over the cap, then two normal lines in the same burst.
    const std::string big(256 * 1024, 'x');
    ASSERT_TRUE(client->SendAll(big + "\nafter\nthe flood\n").ok());
  });

  auto conn = server->Accept();
  ASSERT_TRUE(conn.ok());
  std::string buffer;
  constexpr size_t kCap = 1024;
  // The oversized line is discarded (bounded memory), reported as
  // InvalidArgument...
  auto big_line = conn->RecvLine(&buffer, kCap);
  EXPECT_FALSE(big_line.ok());
  EXPECT_TRUE(big_line.status().IsInvalidArgument())
      << big_line.status().ToString();
  // ...and the stream stays framed: the following lines come out intact.
  EXPECT_EQ(*conn->RecvLine(&buffer, kCap), "after");
  EXPECT_EQ(*conn->RecvLine(&buffer, kCap), "the flood");
  client_thread.join();
}

TEST(SocketTest, RecvLineCapExactBoundaryIsAccepted) {
  const std::string path = TempSocketPath("cap_boundary");
  auto server = ServerSocket::ListenUnix(path);
  ASSERT_TRUE(server.ok());

  constexpr size_t kCap = 64;
  std::thread client_thread([&path] {
    auto client = ConnectUnix(path);
    ASSERT_TRUE(client.ok());
    // Exactly at the cap (payload bytes, excluding '\n'): accepted.
    ASSERT_TRUE(client->SendAll(std::string(kCap, 'a') + "\n").ok());
    // One byte over: rejected.
    ASSERT_TRUE(client->SendAll(std::string(kCap + 1, 'b') + "\n").ok());
    // Still framed afterwards.
    ASSERT_TRUE(client->SendAll("ok\n").ok());
  });

  auto conn = server->Accept();
  ASSERT_TRUE(conn.ok());
  std::string buffer;
  EXPECT_EQ(*conn->RecvLine(&buffer, kCap), std::string(kCap, 'a'));
  EXPECT_TRUE(conn->RecvLine(&buffer, kCap).status().IsInvalidArgument());
  EXPECT_EQ(*conn->RecvLine(&buffer, kCap), "ok");
  client_thread.join();
}

TEST(SocketTest, RecvLineCapUnterminatedEofStillReportsOversize) {
  const std::string path = TempSocketPath("cap_eof");
  auto server = ServerSocket::ListenUnix(path);
  ASSERT_TRUE(server.ok());

  std::thread client_thread([&path] {
    auto client = ConnectUnix(path);
    ASSERT_TRUE(client.ok());
    // Over-cap garbage with NO terminator, then hang up.
    ASSERT_TRUE(client->SendAll(std::string(8 * 1024, 'z')).ok());
  });

  auto conn = server->Accept();
  ASSERT_TRUE(conn.ok());
  std::string buffer;
  auto line = conn->RecvLine(&buffer, 1024);
  EXPECT_FALSE(line.ok());
  EXPECT_TRUE(line.status().IsInvalidArgument()) << line.status().ToString();
  EXPECT_TRUE(buffer.empty());  // Nothing retained.
  client_thread.join();
}

TEST(SocketTest, ShutdownUnblocksParkedAccept) {
  const std::string path = TempSocketPath("unblock");
  auto server = ServerSocket::ListenUnix(path);
  ASSERT_TRUE(server.ok());

  std::atomic<bool> accept_returned{false};
  std::thread acceptor([&] {
    auto conn = server->Accept();  // Parks: no client will connect.
    EXPECT_FALSE(conn.ok());
    EXPECT_TRUE(conn.status().IsUnavailable()) << conn.status().ToString();
    accept_returned.store(true);
  });
  // Give the acceptor time to actually park in accept(2).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(accept_returned.load());
  server->Shutdown();
  acceptor.join();
  EXPECT_TRUE(accept_returned.load());
  // After Shutdown every further Accept fails fast too.
  EXPECT_FALSE(server->Accept().ok());
}

TEST(SocketTest, ShutdownBothUnblocksParkedReader) {
  const std::string path = TempSocketPath("reader");
  auto server = ServerSocket::ListenUnix(path);
  ASSERT_TRUE(server.ok());

  auto client = ConnectUnix(path);
  ASSERT_TRUE(client.ok());
  auto conn = server->Accept();
  ASSERT_TRUE(conn.ok());

  std::thread reader([&] {
    std::string buffer;
    auto line = conn->RecvLine(&buffer);  // Parks: client sends nothing.
    EXPECT_FALSE(line.ok());  // Reads as EOF once shut down.
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  conn->ShutdownBoth();
  reader.join();
}

TEST(SocketTest, StaleSocketFileIsReplaced) {
  const std::string path = TempSocketPath("stale");
  {
    auto first = ServerSocket::ListenUnix(path);
    ASSERT_TRUE(first.ok());
    // Simulate a crash: drop the listener without removing the file...
  }
  // ...the file may linger; a fresh listener must still bind.
  auto second = ServerSocket::ListenUnix(path);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  std::thread client_thread([&path] {
    auto client = ConnectUnix(path);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
  });
  auto conn = second->Accept();
  EXPECT_TRUE(conn.ok());
  client_thread.join();
}

TEST(SocketTest, NonSocketFileAtPathIsAnError) {
  const std::string path = TempSocketPath("regular_file");
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("precious data\n", f);
  std::fclose(f);

  // Refuses to clobber a regular file that happens to sit at the path.
  auto server = ServerSocket::ListenUnix(path);
  EXPECT_FALSE(server.ok());
  struct stat st;
  EXPECT_EQ(::stat(path.c_str(), &st), 0);  // File survived.
  std::remove(path.c_str());
}

TEST(SocketTest, ConnectToMissingEndpointsFails) {
  EXPECT_FALSE(ConnectUnix(TempSocketPath("never_bound")).ok());
  // Port 1 is privileged and almost certainly unbound on loopback.
  EXPECT_FALSE(ConnectTcp(1).ok());
}

}  // namespace
}  // namespace tps
