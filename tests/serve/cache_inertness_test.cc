// Proof that the proxy-score cache is inert: a selection served from the
// cache is bit-identical to one that recomputes every proxy, serially and
// on a thread pool, cold and warm. This is what makes it safe to leave the
// cache on in production — it can only change latency, never answers.

#include <gtest/gtest.h>

#include "core/two_phase.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "transfer/score_cache.h"
#include "util/thread_pool.h"

namespace tps {
namespace {

class CacheInertnessTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    simulator_ = new FineTuneSimulator();
    zoo_ = new ModelZoo(*ModelZoo::Create(NlpPaperZooSpecs()));
    matrix_ = new PerformanceMatrix(*PerformanceMatrix::Build(
        *zoo_, registry_->Benchmarks(TaskDomain::kNLP), *simulator_,
        Hyperparams::DefaultsFor(TaskDomain::kNLP)));
    clustering_ = new ModelClustering(
        *ClusterModels(*matrix_, *zoo_, ModelClusteringOptions()));
  }

  static void ExpectIdentical(const TwoPhaseReport& a,
                              const TwoPhaseReport& b) {
    ASSERT_EQ(a.recall.ranked.size(), b.recall.ranked.size());
    for (size_t i = 0; i < a.recall.ranked.size(); ++i) {
      EXPECT_EQ(a.recall.ranked[i].model_index,
                b.recall.ranked[i].model_index);
      // EXPECT_EQ on doubles is exact — bit-identical, not approximate.
      EXPECT_EQ(a.recall.ranked[i].recall_score,
                b.recall.ranked[i].recall_score);
      EXPECT_EQ(a.recall.ranked[i].proxy_component,
                b.recall.ranked[i].proxy_component);
      EXPECT_EQ(a.recall.ranked[i].via_propagation,
                b.recall.ranked[i].via_propagation);
    }
    EXPECT_EQ(a.recall.proxies_computed, b.recall.proxies_computed);
    EXPECT_EQ(a.selection.selected_model, b.selection.selected_model);
    EXPECT_EQ(a.selection.selected_accuracy, b.selection.selected_accuracy);
    EXPECT_EQ(a.selection.survivors_per_stage,
              b.selection.survivors_per_stage);
    EXPECT_EQ(a.budget.training_epochs(), b.budget.training_epochs());
    EXPECT_EQ(a.budget.inference_epochs(), b.budget.inference_epochs());
  }

  static DatasetRegistry* registry_;
  static FineTuneSimulator* simulator_;
  static ModelZoo* zoo_;
  static PerformanceMatrix* matrix_;
  static ModelClustering* clustering_;
};

DatasetRegistry* CacheInertnessTest::registry_ = nullptr;
FineTuneSimulator* CacheInertnessTest::simulator_ = nullptr;
ModelZoo* CacheInertnessTest::zoo_ = nullptr;
PerformanceMatrix* CacheInertnessTest::matrix_ = nullptr;
ModelClustering* CacheInertnessTest::clustering_ = nullptr;

TEST_F(CacheInertnessTest, CacheOnEqualsCacheOffSerial) {
  TwoPhaseSelector selector(zoo_, matrix_, clustering_, simulator_);
  MetricsRegistry metrics;
  ProxyScoreCache cache(4096, &metrics);
  for (const char* name : {"mnli", "boolq", "tweet_eval"}) {
    const Dataset& target = **registry_->Find(name);
    TwoPhaseOptions off;
    TwoPhaseOptions on;
    on.recall.score_cache = &cache;
    const TwoPhaseReport baseline = *selector.Select(target, off);
    // Cold pass fills the cache, warm pass serves from it; both must match
    // the uncached baseline exactly.
    ExpectIdentical(baseline, *selector.Select(target, on));
    const uint64_t hits_before = cache.hits();
    ExpectIdentical(baseline, *selector.Select(target, on));
    EXPECT_GT(cache.hits(), hits_before) << name;
  }
}

TEST_F(CacheInertnessTest, CacheOnEqualsCacheOffParallel) {
  TwoPhaseSelector selector(zoo_, matrix_, clustering_, simulator_);
  MetricsRegistry metrics;
  ProxyScoreCache cache(4096, &metrics);
  ThreadPool pool(3);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  const Dataset& target = **registry_->Find("mnli");

  TwoPhaseOptions off;
  TwoPhaseOptions on;
  on.recall.score_cache = &cache;
  const TwoPhaseReport baseline = *selector.Select(target, off, hp, &pool);
  // Cold and warm parallel passes: the cache is shared by every pool
  // thread and still cannot perturb the ranking.
  ExpectIdentical(baseline, *selector.Select(target, on, hp, &pool));
  ExpectIdentical(baseline, *selector.Select(target, on, hp, &pool));
  // And parallel-with-cache equals serial-without: the full cross charge.
  ExpectIdentical(baseline, *selector.Select(target, off));
}

TEST_F(CacheInertnessTest, BudgetChargesEveryProxyEvenOnCacheHit) {
  TwoPhaseSelector selector(zoo_, matrix_, clustering_, simulator_);
  MetricsRegistry metrics;
  ProxyScoreCache cache(4096, &metrics);
  TwoPhaseOptions on;
  on.recall.score_cache = &cache;
  const Dataset& target = **registry_->Find("mnli");

  const TwoPhaseReport cold = *selector.Select(target, on);
  const uint64_t misses_after_cold = cache.misses();
  const TwoPhaseReport warm = *selector.Select(target, on);
  // The warm run computed nothing new...
  EXPECT_EQ(cache.misses(), misses_after_cold);
  EXPECT_GT(cache.hits(), 0u);
  // ...but the ledger still charges the same logical inference cost (the
  // paper's cost model counts proxies, and a cache-independent ledger is
  // what lets these reports be compared at all).
  EXPECT_EQ(warm.budget.inference_epochs(), cold.budget.inference_epochs());
  EXPECT_EQ(warm.recall.proxies_computed, cold.recall.proxies_computed);
}

TEST_F(CacheInertnessTest, TinyCacheThrashingIsStillInert) {
  // Capacity 2 forces constant eviction: correctness must not depend on
  // hit rate.
  TwoPhaseSelector selector(zoo_, matrix_, clustering_, simulator_);
  MetricsRegistry metrics;
  ProxyScoreCache cache(2, &metrics);
  TwoPhaseOptions off;
  TwoPhaseOptions on;
  on.recall.score_cache = &cache;
  for (const char* name : {"mnli", "boolq"}) {
    const Dataset& target = **registry_->Find(name);
    const TwoPhaseReport baseline = *selector.Select(target, off);
    ExpectIdentical(baseline, *selector.Select(target, on));
    ExpectIdentical(baseline, *selector.Select(target, on));
  }
  EXPECT_GT(cache.evictions(), 0u);
}

}  // namespace
}  // namespace tps
