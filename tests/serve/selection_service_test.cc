// SelectionService behavior: admission control with explicit backpressure,
// deadlines armed at admission, the shared proxy-score cache, and
// concurrent-equals-serial results.

#include "serve/service.h"

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace tps {
namespace serve {
namespace {

class SelectionServiceTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    artifacts_ = new ServiceArtifacts(
        *ServiceArtifacts::Build(TaskDomain::kNLP));
  }

  /// Fresh copy of the shared artifacts (Create takes ownership).
  static ServiceArtifacts Artifacts() { return *artifacts_; }

  static std::unique_ptr<SelectionService> MakeService(
      const ServiceOptions& options) {
    auto service_or = SelectionService::Create(Artifacts(), options);
    EXPECT_TRUE(service_or.ok()) << service_or.status().ToString();
    return std::move(*service_or);
  }

  static SelectionRequest Request(const std::string& target) {
    SelectionRequest request;
    request.target = target;
    return request;
  }

  static ServiceArtifacts* artifacts_;
};

ServiceArtifacts* SelectionServiceTest::artifacts_ = nullptr;

TEST_F(SelectionServiceTest, CreateValidatesOptions) {
  ServiceOptions options;
  options.worker_threads = -1;
  EXPECT_FALSE(SelectionService::Create(Artifacts(), options).ok());
  options = ServiceOptions();
  options.max_queue = 0;
  EXPECT_FALSE(SelectionService::Create(Artifacts(), options).ok());
  options = ServiceOptions();
  options.pipeline_threads = 0;
  EXPECT_FALSE(SelectionService::Create(Artifacts(), options).ok());
  options = ServiceOptions();
  options.default_deadline_ms = -1.0;
  EXPECT_FALSE(SelectionService::Create(Artifacts(), options).ok());
}

TEST_F(SelectionServiceTest, HandleMatchesDirectSelector) {
  // The service is a serving shell, not a different algorithm: its answer
  // must match a hand-built selector on the same artifacts exactly.
  const ServiceArtifacts artifacts = Artifacts();
  FineTuneSimulator simulator;
  TwoPhaseSelector selector(&artifacts.zoo, &artifacts.matrix,
                            &artifacts.clustering, &simulator);
  const Dataset& target = **artifacts.registry.Find("mnli");
  const TwoPhaseReport direct = *selector.Select(target, TwoPhaseOptions());

  MetricsRegistry metrics;
  ServiceOptions options;
  options.worker_threads = 0;
  options.metrics = &metrics;
  auto service = MakeService(options);
  const SelectionResponse response = service->Handle(Request("mnli"));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.selected_model,
            artifacts.zoo.model(direct.selection.selected_model).name());
  EXPECT_EQ(response.selected_accuracy, direct.selection.selected_accuracy);
  EXPECT_EQ(response.survivors_per_stage,
            direct.selection.survivors_per_stage);
  EXPECT_EQ(response.total_epochs, direct.budget.total_epochs());
  EXPECT_GT(response.wall_ms, 0.0);
}

TEST_F(SelectionServiceTest, UnknownTargetAndWrongDomainFailCleanly) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.worker_threads = 0;
  options.metrics = &metrics;
  auto service = MakeService(options);

  const SelectionResponse unknown = service->Handle(Request("no-such"));
  EXPECT_TRUE(unknown.status.IsNotFound());
  EXPECT_TRUE(unknown.selected_model.empty());

  // "beans" is a CV dataset; this service holds NLP artifacts.
  const SelectionResponse mismatch = service->Handle(Request("beans"));
  EXPECT_TRUE(mismatch.status.IsInvalidArgument());
  EXPECT_TRUE(mismatch.selected_model.empty());
  EXPECT_EQ(service->Stats().errors, 2u);
}

TEST_F(SelectionServiceTest, FailedRequestCarriesNoPartialResult) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.worker_threads = 0;
  options.metrics = &metrics;
  auto service = MakeService(options);
  SelectionRequest request = Request("mnli");
  request.want_trace = true;
  request.deadline_ms = 0.0005;  // Expires almost immediately.
  const SelectionResponse response = service->Handle(request);
  ASSERT_TRUE(response.status.IsDeadlineExceeded())
      << response.status.ToString();
  // Everything except target + status is default-initialized — the
  // half-filled trace from the aborted run must not leak out.
  EXPECT_TRUE(response.selected_model.empty());
  EXPECT_EQ(response.selected_accuracy, 0.0);
  EXPECT_TRUE(response.survivors_per_stage.empty());
  EXPECT_FALSE(response.has_trace);
  EXPECT_EQ(service->Stats().deadline_exceeded, 1u);
}

TEST_F(SelectionServiceTest, SubmitDrainsThroughWorkers) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.worker_threads = 2;
  options.metrics = &metrics;
  auto service = MakeService(options);
  std::vector<std::future<SelectionResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(service->Submit(Request(i % 2 == 0 ? "mnli" : "boolq")));
  }
  for (auto& future : futures) {
    const SelectionResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_FALSE(response.selected_model.empty());
  }
  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(SelectionServiceTest, FullQueueRejectsImmediately) {
  MetricsRegistry metrics;
  std::atomic<bool> hold{true};
  std::atomic<int> in_hook{0};
  ServiceOptions options;
  options.worker_threads = 1;
  options.max_queue = 2;
  options.metrics = &metrics;
  options.pre_handle_hook = [&] {
    in_hook.fetch_add(1);
    while (hold.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
  };
  auto service = MakeService(options);

  // First request: the worker dequeues it and parks in the hook.
  auto f1 = service->Submit(Request("mnli"));
  while (in_hook.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Queue is now empty; fill it to capacity.
  auto f2 = service->Submit(Request("mnli"));
  auto f3 = service->Submit(Request("boolq"));
  EXPECT_EQ(service->queue_depth(), 2u);

  // One over capacity: rejected NOW, without blocking, with Unavailable.
  const auto reject_start = std::chrono::steady_clock::now();
  auto f4 = service->Submit(Request("mnli"));
  const SelectionResponse rejected = f4.get();
  const double reject_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - reject_start)
          .count();
  EXPECT_TRUE(rejected.status.IsUnavailable())
      << rejected.status.ToString();
  EXPECT_NE(rejected.status.message().find("queue full"),
            std::string::npos);
  EXPECT_LT(reject_ms, 1000.0);  // Rejection never waits for the pipeline.

  hold.store(false);
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
  EXPECT_TRUE(f3.get().status.ok());

  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(metrics.counter("serve.rejected").value(), 1u);
  EXPECT_EQ(metrics.gauge("serve.queue_depth").max_value(), 2.0);
}

TEST_F(SelectionServiceTest, DeadlineBurnsWhileQueued) {
  // The deadline is armed at admission: a request that waits out its
  // deadline in the queue is answered DeadlineExceeded without ever
  // touching the pipeline.
  MetricsRegistry metrics;
  std::atomic<bool> hold{true};
  std::atomic<int> in_hook{0};
  ServiceOptions options;
  options.worker_threads = 1;
  options.metrics = &metrics;
  options.pre_handle_hook = [&] {
    in_hook.fetch_add(1);
    while (hold.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
  };
  auto service = MakeService(options);

  auto blocker = service->Submit(Request("mnli"));  // No deadline.
  while (in_hook.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  SelectionRequest doomed = Request("boolq");
  doomed.deadline_ms = 5.0;
  auto f = service->Submit(std::move(doomed));
  // Let the 5 ms deadline expire while the request sits in the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  hold.store(false);

  EXPECT_TRUE(blocker.get().status.ok());
  const SelectionResponse response = f.get();
  EXPECT_TRUE(response.status.IsDeadlineExceeded())
      << response.status.ToString();
  EXPECT_TRUE(response.selected_model.empty());
  EXPECT_EQ(service->Stats().deadline_exceeded, 1u);
}

TEST_F(SelectionServiceTest, ShutdownAnswersAbandonedRequests) {
  MetricsRegistry metrics;
  std::atomic<bool> hold{true};
  std::atomic<int> in_hook{0};
  ServiceOptions options;
  options.worker_threads = 1;
  options.metrics = &metrics;
  options.pre_handle_hook = [&] {
    in_hook.fetch_add(1);
    while (hold.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
  };
  auto service = MakeService(options);

  auto f1 = service->Submit(Request("mnli"));
  while (in_hook.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto f2 = service->Submit(Request("boolq"));
  auto f3 = service->Submit(Request("mnli"));

  // Destroy the service from another thread: the destructor swaps the
  // queue out (f2/f3 become abandoned) and then blocks joining the worker
  // we are holding; release it once the destruction is underway.
  std::thread destroyer([&] { service.reset(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  hold.store(false);
  destroyer.join();

  EXPECT_TRUE(f1.get().status.ok());
  const SelectionResponse r2 = f2.get();
  const SelectionResponse r3 = f3.get();
  EXPECT_TRUE(r2.status.IsUnavailable()) << r2.status.ToString();
  EXPECT_NE(r2.status.message().find("shutting down"), std::string::npos);
  EXPECT_TRUE(r3.status.IsUnavailable());
}

TEST_F(SelectionServiceTest, ConcurrentHandleMatchesSerialBaseline) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.worker_threads = 0;
  options.metrics = &metrics;
  auto service = MakeService(options);

  const SelectionResponse mnli = service->Handle(Request("mnli"));
  const SelectionResponse boolq = service->Handle(Request("boolq"));
  ASSERT_TRUE(mnli.status.ok());
  ASSERT_TRUE(boolq.status.ok());

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const SelectionResponse& want = t % 2 == 0 ? mnli : boolq;
      for (int i = 0; i < 3; ++i) {
        const SelectionResponse got =
            service->Handle(Request(t % 2 == 0 ? "mnli" : "boolq"));
        if (!got.status.ok() || got.selected_model != want.selected_model ||
            got.selected_accuracy != want.selected_accuracy ||
            got.survivors_per_stage != want.survivors_per_stage) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(SelectionServiceTest, CacheWarmsAcrossRequests) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.worker_threads = 0;
  options.metrics = &metrics;
  auto service = MakeService(options);

  const SelectionResponse cold = service->Handle(Request("mnli"));
  ASSERT_TRUE(cold.status.ok());
  EXPECT_GT(cold.cache_misses, 0u);
  EXPECT_EQ(cold.cache_hits, 0u);

  const SelectionResponse warm = service->Handle(Request("mnli"));
  ASSERT_TRUE(warm.status.ok());
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(warm.cache_misses, 0u);
  // Warm answers are identical, just cheaper.
  EXPECT_EQ(warm.selected_model, cold.selected_model);
  EXPECT_EQ(warm.selected_accuracy, cold.selected_accuracy);
  EXPECT_EQ(metrics.counter("proxy_cache.hits").value(), warm.cache_hits);
}

TEST_F(SelectionServiceTest, CacheDisabledStillServes) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.worker_threads = 0;
  options.cache_capacity = 0;
  options.metrics = &metrics;
  auto service = MakeService(options);
  EXPECT_EQ(service->cache(), nullptr);
  const SelectionResponse a = service->Handle(Request("mnli"));
  const SelectionResponse b = service->Handle(Request("mnli"));
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(a.selected_model, b.selected_model);
  EXPECT_EQ(a.cache_hits, 0u);
  EXPECT_EQ(b.cache_hits, 0u);
}

TEST_F(SelectionServiceTest, TraceOnRequestOnly) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.worker_threads = 0;
  options.metrics = &metrics;
  auto service = MakeService(options);

  const SelectionResponse plain = service->Handle(Request("mnli"));
  EXPECT_FALSE(plain.has_trace);

  SelectionRequest request = Request("mnli");
  request.want_trace = true;
  const SelectionResponse traced = service->Handle(request);
  ASSERT_TRUE(traced.status.ok());
  ASSERT_TRUE(traced.has_trace);
  EXPECT_NE(traced.trace.ToJson(-1).find("mnli"), std::string::npos);
}

TEST_F(SelectionServiceTest, PipelinePoolMatchesSerial) {
  ServiceOptions serial_options;
  serial_options.worker_threads = 0;
  auto serial = MakeService(serial_options);
  ServiceOptions pooled_options;
  pooled_options.worker_threads = 0;
  pooled_options.pipeline_threads = 3;
  auto pooled = MakeService(pooled_options);
  for (const char* name : {"mnli", "boolq"}) {
    const SelectionResponse a = serial->Handle(Request(name));
    const SelectionResponse b = pooled->Handle(Request(name));
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    EXPECT_EQ(a.selected_model, b.selected_model) << name;
    EXPECT_EQ(a.selected_accuracy, b.selected_accuracy) << name;
    EXPECT_EQ(a.survivors_per_stage, b.survivors_per_stage) << name;
    EXPECT_EQ(a.total_epochs, b.total_epochs) << name;
  }
}

}  // namespace
}  // namespace serve
}  // namespace tps
