// End-to-end: SelectionServer + SelectionService over real sockets, the
// full NDJSON session lifecycle — connect, select, errors that keep the
// session open, stats, and the shutdown command.

#include "serve/server.h"

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/protocol.h"
#include "util/json.h"
#include "util/socket.h"

namespace tps {
namespace serve {
namespace {

class SelectionServerTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    artifacts_ = new ServiceArtifacts(
        *ServiceArtifacts::Build(TaskDomain::kNLP));
  }

  void SetUp() override {
    ServiceOptions options;
    options.worker_threads = 2;
    options.metrics = &metrics_;
    auto service_or = SelectionService::Create(*artifacts_, options);
    ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
    service_ = std::move(*service_or);
  }

  std::string SocketPath(const std::string& tag) {
    return testing::TempDir() + "/tps_server_test_" + tag + "_" +
           std::to_string(::getpid()) + ".sock";
  }

  std::unique_ptr<SelectionServer> StartUnix(const std::string& path) {
    ServerOptions options;
    options.unix_path = path;
    auto server_or = SelectionServer::Start(service_.get(), options);
    EXPECT_TRUE(server_or.ok()) << server_or.status().ToString();
    return std::move(*server_or);
  }

  /// One request/reply exchange on an open connection.
  static std::string Exchange(Socket& socket, std::string* buffer,
                              const std::string& line) {
    EXPECT_TRUE(socket.SendAll(line + "\n").ok());
    auto reply = socket.RecvLine(buffer);
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    return reply.ok() ? *reply : "";
  }

  static ServiceArtifacts* artifacts_;
  MetricsRegistry metrics_;
  std::unique_ptr<SelectionService> service_;
};

ServiceArtifacts* SelectionServerTest::artifacts_ = nullptr;

TEST_F(SelectionServerTest, StartValidatesArguments) {
  ServerOptions options;
  options.unix_path = SocketPath("null_service");
  EXPECT_FALSE(SelectionServer::Start(nullptr, options).ok());
  // No endpoint at all.
  EXPECT_FALSE(SelectionServer::Start(service_.get(), ServerOptions()).ok());
}

TEST_F(SelectionServerTest, FullSessionOverUnixSocket) {
  const std::string path = SocketPath("session");
  auto server = StartUnix(path);
  ASSERT_NE(server, nullptr);

  auto client = ConnectUnix(path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::string buffer;

  // Ping.
  EXPECT_EQ(Exchange(*client, &buffer, R"({"cmd": "ping"})"), PongLine());

  // Cold select: misses, no hits.
  auto cold = ParseResponseLine(
      Exchange(*client, &buffer, R"({"target": "mnli"})"));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold->status.ok()) << cold->status.ToString();
  EXPECT_EQ(cold->target, "mnli");
  EXPECT_FALSE(cold->selected_model.empty());
  EXPECT_GT(cold->cache_misses, 0u);
  EXPECT_EQ(cold->cache_hits, 0u);

  // A bad line gets an error reply but the session stays open.
  auto error = ParseResponseLine(Exchange(*client, &buffer, "not json"));
  EXPECT_TRUE(error.status().IsInvalidArgument())
      << error.status().ToString();
  auto missing = ParseResponseLine(
      Exchange(*client, &buffer, R"({"target": "no-such-dataset"})"));
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status().ToString();

  // Warm select on the same (still-open) connection: hits, same answer.
  auto warm = ParseResponseLine(
      Exchange(*client, &buffer, R"({"target": "mnli", "trace": true})"));
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->status.ok());
  EXPECT_EQ(warm->selected_model, cold->selected_model);
  EXPECT_EQ(warm->selected_accuracy, cold->selected_accuracy);
  EXPECT_GT(warm->cache_hits, 0u);
  EXPECT_TRUE(warm->has_trace);

  // Stats reflect the session so far.
  auto stats = json::Parse(Exchange(*client, &buffer, R"({"cmd": "stats"})"));
  ASSERT_TRUE(stats.ok());
  const json::Value* inner = stats->Find("stats");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(*inner->GetNumber("completed"), 2.0);
  EXPECT_EQ(*inner->GetNumber("errors"), 1.0);  // The NotFound select.

  // Shutdown: ack arrives, then the server drains and Wait() returns.
  EXPECT_EQ(Exchange(*client, &buffer, R"({"cmd": "shutdown"})"),
            ShutdownAckLine());
  server->Wait();
  server->Shutdown();
  // The unix socket file is gone once the listener closed.
  EXPECT_FALSE(ConnectUnix(path).ok());
}

TEST_F(SelectionServerTest, EmptyLinesAreIgnored) {
  const std::string path = SocketPath("empty_lines");
  auto server = StartUnix(path);
  ASSERT_NE(server, nullptr);
  auto client = ConnectUnix(path);
  ASSERT_TRUE(client.ok());
  std::string buffer;
  // Blank lines produce no reply; the next real command still works.
  ASSERT_TRUE(client->SendAll("\n\n").ok());
  EXPECT_EQ(Exchange(*client, &buffer, R"({"cmd": "ping"})"), PongLine());
  server->Shutdown();
}

TEST_F(SelectionServerTest, ConcurrentConnectionsShareTheCache) {
  const std::string path = SocketPath("concurrent");
  auto server = StartUnix(path);
  ASSERT_NE(server, nullptr);

  // Warm the cache once so every concurrent client can hit.
  {
    auto warmup = ConnectUnix(path);
    ASSERT_TRUE(warmup.ok());
    std::string buffer;
    auto reply = ParseResponseLine(
        Exchange(*warmup, &buffer, R"({"target": "mnli"})"));
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(reply->status.ok());
  }

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<std::string> selected(kClients);
  std::vector<uint64_t> hits(kClients, 0);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto client = ConnectUnix(path);
      ASSERT_TRUE(client.ok());
      std::string buffer;
      auto reply = ParseResponseLine(
          Exchange(*client, &buffer, R"({"target": "mnli"})"));
      ASSERT_TRUE(reply.ok());
      ASSERT_TRUE(reply->status.ok()) << reply->status.ToString();
      selected[i] = reply->selected_model;
      hits[i] = reply->cache_hits;
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(selected[i], selected[0]);
  }
  for (int i = 0; i < kClients; ++i) {
    EXPECT_GT(hits[i], 0u) << "client " << i << " missed a warm cache";
  }
  server->Shutdown();
  EXPECT_EQ(service_->Stats().completed, 1u + kClients);
}

TEST_F(SelectionServerTest, TcpEndpointServes) {
  ServerOptions options;
  options.tcp_port = 0;  // Auto-assign.
  auto server_or = SelectionServer::Start(service_.get(), options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto& server = *server_or;
  ASSERT_GT(server->tcp_port(), 0);

  auto client = ConnectTcp(server->tcp_port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::string buffer;
  EXPECT_EQ(Exchange(*client, &buffer, R"({"cmd": "ping"})"), PongLine());
  auto reply = ParseResponseLine(
      Exchange(*client, &buffer, R"({"target": "boolq", "k": 5})"));
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->status.ok()) << reply->status.ToString();
  EXPECT_FALSE(reply->selected_model.empty());
  server->Shutdown();
}

TEST_F(SelectionServerTest, ShutdownWithLiveConnectionUnblocksIt) {
  const std::string path = SocketPath("live_conn");
  auto server = StartUnix(path);
  ASSERT_NE(server, nullptr);
  auto client = ConnectUnix(path);
  ASSERT_TRUE(client.ok());
  std::string buffer;
  // Prove the connection is established, then leave it idle.
  EXPECT_EQ(Exchange(*client, &buffer, R"({"cmd": "ping"})"), PongLine());
  // Shutdown must not hang on the idle connection's parked reader.
  server->Shutdown();
  // The peer observes the close as EOF.
  auto eof = client->RecvLine(&buffer);
  EXPECT_FALSE(eof.ok());
}

}  // namespace
}  // namespace serve
}  // namespace tps
