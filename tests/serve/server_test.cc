// End-to-end: SelectionServer + SelectionService over real sockets, the
// full NDJSON session lifecycle — connect, select, errors that keep the
// session open, stats, and the shutdown command.

#include "serve/server.h"

#include <unistd.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/protocol.h"
#include "util/json.h"
#include "util/socket.h"

namespace tps {
namespace serve {
namespace {

class SelectionServerTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    artifacts_ = new ServiceArtifacts(
        *ServiceArtifacts::Build(TaskDomain::kNLP));
  }

  void SetUp() override {
    ServiceOptions options;
    options.worker_threads = 2;
    options.metrics = &metrics_;
    auto service_or = SelectionService::Create(*artifacts_, options);
    ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
    service_ = std::move(*service_or);
  }

  std::string SocketPath(const std::string& tag) {
    return testing::TempDir() + "/tps_server_test_" + tag + "_" +
           std::to_string(::getpid()) + ".sock";
  }

  std::unique_ptr<SelectionServer> StartUnix(const std::string& path) {
    ServerOptions options;
    options.unix_path = path;
    auto server_or = SelectionServer::Start(service_.get(), options);
    EXPECT_TRUE(server_or.ok()) << server_or.status().ToString();
    return std::move(*server_or);
  }

  /// One request/reply exchange on an open connection.
  static std::string Exchange(Socket& socket, std::string* buffer,
                              const std::string& line) {
    EXPECT_TRUE(socket.SendAll(line + "\n").ok());
    auto reply = socket.RecvLine(buffer);
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    return reply.ok() ? *reply : "";
  }

  static ServiceArtifacts* artifacts_;
  MetricsRegistry metrics_;
  std::unique_ptr<SelectionService> service_;
};

ServiceArtifacts* SelectionServerTest::artifacts_ = nullptr;

TEST_F(SelectionServerTest, StartValidatesArguments) {
  ServerOptions options;
  options.unix_path = SocketPath("null_service");
  EXPECT_FALSE(SelectionServer::Start(nullptr, options).ok());
  // No endpoint at all.
  EXPECT_FALSE(SelectionServer::Start(service_.get(), ServerOptions()).ok());
}

TEST_F(SelectionServerTest, FullSessionOverUnixSocket) {
  const std::string path = SocketPath("session");
  auto server = StartUnix(path);
  ASSERT_NE(server, nullptr);

  auto client = ConnectUnix(path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::string buffer;

  // Ping.
  EXPECT_EQ(Exchange(*client, &buffer, R"({"cmd": "ping"})"), PongLine());

  // Cold select: misses, no hits.
  auto cold = ParseResponseLine(
      Exchange(*client, &buffer, R"({"target": "mnli"})"));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold->status.ok()) << cold->status.ToString();
  EXPECT_EQ(cold->target, "mnli");
  EXPECT_FALSE(cold->selected_model.empty());
  EXPECT_GT(cold->cache_misses, 0u);
  EXPECT_EQ(cold->cache_hits, 0u);

  // A bad line gets an error reply but the session stays open.
  auto error = ParseResponseLine(Exchange(*client, &buffer, "not json"));
  EXPECT_TRUE(error.status().IsInvalidArgument())
      << error.status().ToString();
  auto missing = ParseResponseLine(
      Exchange(*client, &buffer, R"({"target": "no-such-dataset"})"));
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status().ToString();

  // Warm select on the same (still-open) connection: hits, same answer.
  auto warm = ParseResponseLine(
      Exchange(*client, &buffer, R"({"target": "mnli", "trace": true})"));
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->status.ok());
  EXPECT_EQ(warm->selected_model, cold->selected_model);
  EXPECT_EQ(warm->selected_accuracy, cold->selected_accuracy);
  EXPECT_GT(warm->cache_hits, 0u);
  EXPECT_TRUE(warm->has_trace);

  // Stats reflect the session so far.
  auto stats = json::Parse(Exchange(*client, &buffer, R"({"cmd": "stats"})"));
  ASSERT_TRUE(stats.ok());
  const json::Value* inner = stats->Find("stats");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(*inner->GetNumber("completed"), 2.0);
  EXPECT_EQ(*inner->GetNumber("errors"), 1.0);  // The NotFound select.

  // Shutdown: ack arrives, then the server drains and Wait() returns.
  EXPECT_EQ(Exchange(*client, &buffer, R"({"cmd": "shutdown"})"),
            ShutdownAckLine());
  server->Wait();
  server->Shutdown();
  // The unix socket file is gone once the listener closed.
  EXPECT_FALSE(ConnectUnix(path).ok());
}

TEST_F(SelectionServerTest, EmptyLinesAreIgnored) {
  const std::string path = SocketPath("empty_lines");
  auto server = StartUnix(path);
  ASSERT_NE(server, nullptr);
  auto client = ConnectUnix(path);
  ASSERT_TRUE(client.ok());
  std::string buffer;
  // Blank lines produce no reply; the next real command still works.
  ASSERT_TRUE(client->SendAll("\n\n").ok());
  EXPECT_EQ(Exchange(*client, &buffer, R"({"cmd": "ping"})"), PongLine());
  server->Shutdown();
}

TEST_F(SelectionServerTest, ConcurrentConnectionsShareTheCache) {
  const std::string path = SocketPath("concurrent");
  auto server = StartUnix(path);
  ASSERT_NE(server, nullptr);

  // Warm the cache once so every concurrent client can hit.
  {
    auto warmup = ConnectUnix(path);
    ASSERT_TRUE(warmup.ok());
    std::string buffer;
    auto reply = ParseResponseLine(
        Exchange(*warmup, &buffer, R"({"target": "mnli"})"));
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(reply->status.ok());
  }

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<std::string> selected(kClients);
  std::vector<uint64_t> hits(kClients, 0);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto client = ConnectUnix(path);
      ASSERT_TRUE(client.ok());
      std::string buffer;
      auto reply = ParseResponseLine(
          Exchange(*client, &buffer, R"({"target": "mnli"})"));
      ASSERT_TRUE(reply.ok());
      ASSERT_TRUE(reply->status.ok()) << reply->status.ToString();
      selected[i] = reply->selected_model;
      hits[i] = reply->cache_hits;
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(selected[i], selected[0]);
  }
  for (int i = 0; i < kClients; ++i) {
    EXPECT_GT(hits[i], 0u) << "client " << i << " missed a warm cache";
  }
  server->Shutdown();
  EXPECT_EQ(service_->Stats().completed, 1u + kClients);
}

TEST_F(SelectionServerTest, TcpEndpointServes) {
  ServerOptions options;
  options.tcp_port = 0;  // Auto-assign.
  auto server_or = SelectionServer::Start(service_.get(), options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto& server = *server_or;
  ASSERT_GT(server->tcp_port(), 0);

  auto client = ConnectTcp(server->tcp_port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::string buffer;
  EXPECT_EQ(Exchange(*client, &buffer, R"({"cmd": "ping"})"), PongLine());
  auto reply = ParseResponseLine(
      Exchange(*client, &buffer, R"({"target": "boolq", "k": 5})"));
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->status.ok()) << reply->status.ToString();
  EXPECT_FALSE(reply->selected_model.empty());
  server->Shutdown();
}

// Regression (connection-thread leak): the server used to keep every
// connection's thread and socket until Shutdown, growing without bound on
// a long-lived server. Finished handlers must be reaped as accept loops
// turn over, so bookkeeping stays O(live connections).
TEST_F(SelectionServerTest, ConnectionBookkeepingStaysBounded) {
  const std::string path = SocketPath("reap");
  auto server = StartUnix(path);
  ASSERT_NE(server, nullptr);

  constexpr int kSessions = 20;
  for (int i = 0; i < kSessions; ++i) {
    auto client = ConnectUnix(path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    std::string buffer;
    EXPECT_EQ(Exchange(*client, &buffer, R"({"cmd": "ping"})"), PongLine());
    // Destructor closes the socket; the handler notices EOF and finishes.
  }

  // Each new accept reaps whatever finished before it; probe until the
  // stragglers' handlers have observed EOF and been joined. Only the live
  // probe connection (and at most one not-yet-reaped session) may remain.
  bool bounded = false;
  for (int attempt = 0; attempt < 100 && !bounded; ++attempt) {
    auto probe = ConnectUnix(path);
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    std::string buffer;
    EXPECT_EQ(Exchange(*probe, &buffer, R"({"cmd": "ping"})"), PongLine());
    bounded = server->tracked_connections() <= 2;
    if (!bounded) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(bounded) << "still tracking " << server->tracked_connections()
                       << " connections after " << kSessions
                       << " closed sessions";
  server->Shutdown();
}

// Regression (unbounded recv buffer): an unterminated or huge line used to
// be buffered in full. Now it is discarded at the cap, answered with an
// error reply, and the SESSION SURVIVES — framing recovers at the next
// newline.
TEST_F(SelectionServerTest, OversizedLineGetsErrorReplyAndSessionSurvives) {
  const std::string path = SocketPath("oversized");
  ServerOptions options;
  options.unix_path = path;
  options.max_line_bytes = 4096;
  auto server_or = SelectionServer::Start(service_.get(), options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto& server = *server_or;

  auto client = ConnectUnix(path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::string buffer;

  // 64 KiB of garbage on one line: error reply, not a dropped connection.
  const std::string big(64 * 1024, 'x');
  auto reply = ParseResponseLine(Exchange(*client, &buffer, big));
  EXPECT_TRUE(reply.status().IsInvalidArgument())
      << reply.status().ToString();

  // The stream re-framed on the newline: the next command still works.
  EXPECT_EQ(Exchange(*client, &buffer, R"({"cmd": "ping"})"), PongLine());

  // An oversized line followed by a valid one in the same burst: the
  // valid command is answered after the error (framing is exact, not
  // heuristic).
  ASSERT_TRUE(client->SendAll(big + "\n" + R"({"cmd": "ping"})" + "\n").ok());
  auto error_line = client->RecvLine(&buffer);
  ASSERT_TRUE(error_line.ok()) << error_line.status().ToString();
  EXPECT_TRUE(ParseResponseLine(*error_line).status().IsInvalidArgument());
  auto pong_line = client->RecvLine(&buffer);
  ASSERT_TRUE(pong_line.ok()) << pong_line.status().ToString();
  EXPECT_EQ(*pong_line, PongLine());
  server->Shutdown();
}

// Regression (lost shutdown): a client that sends `shutdown` and
// disconnects without reading the ack used to leave the server running
// forever — the failed ack send returned before RequestShutdown(). The
// shutdown must take effect once the command parsed, ack delivered or not.
TEST_F(SelectionServerTest, ShutdownHonoredWhenAckSendFails) {
  const std::string path = SocketPath("lost_ack");
  ServerOptions options;
  options.unix_path = path;
  // Hold every reply until the test releases it — so the client can close
  // its end BEFORE the ack send, making the send failure deterministic.
  std::promise<void> client_closed;
  std::shared_future<void> closed_future(client_closed.get_future());
  options.pre_reply_hook = [closed_future] { closed_future.wait(); };
  auto server_or = SelectionServer::Start(service_.get(), options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto& server = *server_or;

  {
    auto client = ConnectUnix(path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client->SendAll("{\"cmd\": \"shutdown\"}\n").ok());
    // Close without reading the ack.
  }
  client_closed.set_value();

  // The server must still stop. (A regression hangs here and trips the
  // test timeout.)
  server->Wait();
  server->Shutdown();
}

TEST_F(SelectionServerTest, ReloadOverTheWire) {
  // Persist the suite artifacts as the plain-file pair a reload names.
  const std::string dir = testing::TempDir();
  const std::string matrix_path =
      dir + std::string("/tps_server_test_reload_matrix_") + std::to_string(::getpid());
  const std::string clustering_path =
      dir + "/tps_server_test_reload_clustering_" +
      std::to_string(::getpid());
  ASSERT_TRUE(artifacts_->matrix.SaveToFile(matrix_path).ok());
  ASSERT_TRUE(SaveClustering(artifacts_->clustering, clustering_path).ok());

  const std::string path = SocketPath("reload");
  auto server = StartUnix(path);
  ASSERT_NE(server, nullptr);
  auto client = ConnectUnix(path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::string buffer;

  // Selects before the swap are tagged with version 1.
  auto before = ParseResponseLine(
      Exchange(*client, &buffer, R"({"target": "mnli"})"));
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before->status.ok()) << before->status.ToString();
  EXPECT_EQ(before->artifact_version, 1u);

  // A reload naming a missing file fails and changes nothing.
  auto bad = json::Parse(Exchange(
      *client, &buffer,
      R"({"cmd": "reload", "matrix": "/no/such/file", "clustering": ")" +
          clustering_path + "\"}"));
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(*bad->GetBool("ok"), false);
  EXPECT_EQ(service_->artifact_version(), 1u);

  // A real reload bumps the version; the session survives the swap.
  auto ack = json::Parse(Exchange(
      *client, &buffer, R"({"cmd": "reload", "matrix": ")" + matrix_path +
                            R"(", "clustering": ")" + clustering_path +
                            "\"}"));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(*ack->GetBool("ok"), true);
  EXPECT_EQ(*ack->GetNumber("artifact_version"), 2.0);

  auto after = ParseResponseLine(
      Exchange(*client, &buffer, R"({"target": "mnli"})"));
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->status.ok()) << after->status.ToString();
  EXPECT_EQ(after->artifact_version, 2u);
  EXPECT_EQ(after->selected_model, before->selected_model);

  // Stats surface the swap.
  auto stats = json::Parse(Exchange(*client, &buffer, R"({"cmd": "stats"})"));
  ASSERT_TRUE(stats.ok());
  const json::Value* inner = stats->Find("stats");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(*inner->GetNumber("artifact_version"), 2.0);
  EXPECT_EQ(*inner->GetNumber("reloads"), 1.0);

  server->Shutdown();
  ::unlink(matrix_path.c_str());
  ::unlink(clustering_path.c_str());
}

TEST_F(SelectionServerTest, ShutdownWithLiveConnectionUnblocksIt) {
  const std::string path = SocketPath("live_conn");
  auto server = StartUnix(path);
  ASSERT_NE(server, nullptr);
  auto client = ConnectUnix(path);
  ASSERT_TRUE(client.ok());
  std::string buffer;
  // Prove the connection is established, then leave it idle.
  EXPECT_EQ(Exchange(*client, &buffer, R"({"cmd": "ping"})"), PongLine());
  // Shutdown must not hang on the idle connection's parked reader.
  server->Shutdown();
  // The peer observes the close as EOF.
  auto eof = client->RecvLine(&buffer);
  EXPECT_FALSE(eof.ok());
}

}  // namespace
}  // namespace serve
}  // namespace tps
