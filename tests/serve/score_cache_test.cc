#include "transfer/score_cache.h"

#include <gtest/gtest.h>

#include "data/registry.h"
#include "model/paper_zoo.h"
#include "model/zoo.h"
#include "transfer/proxy_scorer.h"

namespace tps {
namespace {

ProxyCacheKey Key(uint64_t fp, const std::string& model,
                  const std::string& scorer = "leep") {
  ProxyCacheKey key;
  key.dataset_fingerprint = fp;
  key.model = model;
  key.scorer = scorer;
  return key;
}

TEST(DatasetFingerprintTest, DeterministicAcrossCalls) {
  DatasetRegistry registry = *DatasetRegistry::CreatePaperInventory();
  const Dataset* mnli = *registry.Find("mnli");
  EXPECT_EQ(DatasetFingerprint(*mnli), DatasetFingerprint(*mnli));
  // A second registry instance produces the same dataset, hence the same
  // fingerprint — no pointer identity or ASLR leaks into the key.
  DatasetRegistry again = *DatasetRegistry::CreatePaperInventory();
  EXPECT_EQ(DatasetFingerprint(*mnli),
            DatasetFingerprint(**again.Find("mnli")));
}

TEST(DatasetFingerprintTest, DistinctDatasetsDistinctFingerprints) {
  DatasetRegistry registry = *DatasetRegistry::CreatePaperInventory();
  const Dataset* mnli = *registry.Find("mnli");
  const Dataset* boolq = *registry.Find("boolq");
  EXPECT_NE(DatasetFingerprint(*mnli), DatasetFingerprint(*boolq));
}

TEST(ProxyScoreCacheTest, MissThenHit) {
  MetricsRegistry metrics;
  ProxyScoreCache cache(8, &metrics);
  const ProxyCacheKey key = Key(1, "bert");
  EXPECT_FALSE(cache.Lookup(key).has_value());
  cache.Insert(key, 0.25);
  auto cached = cache.Lookup(key);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, 0.25);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(metrics.counter("proxy_cache.hits").value(), 1u);
  EXPECT_EQ(metrics.counter("proxy_cache.misses").value(), 1u);
}

TEST(ProxyScoreCacheTest, KeyDistinguishesAllThreeComponents) {
  MetricsRegistry metrics;
  ProxyScoreCache cache(8, &metrics);
  cache.Insert(Key(1, "bert", "leep"), 1.0);
  EXPECT_FALSE(cache.Lookup(Key(2, "bert", "leep")).has_value());
  EXPECT_FALSE(cache.Lookup(Key(1, "gpt", "leep")).has_value());
  EXPECT_FALSE(cache.Lookup(Key(1, "bert", "nce")).has_value());
  EXPECT_TRUE(cache.Lookup(Key(1, "bert", "leep")).has_value());
}

TEST(ProxyScoreCacheTest, EvictionOrderIsDeterministicLru) {
  MetricsRegistry metrics;
  ProxyScoreCache cache(3, &metrics);
  cache.Insert(Key(1, "a"), 0.1);
  cache.Insert(Key(2, "b"), 0.2);
  cache.Insert(Key(3, "c"), 0.3);
  // Touch "a": it becomes most-recent, "b" becomes least-recent.
  EXPECT_TRUE(cache.Lookup(Key(1, "a")).has_value());
  cache.Insert(Key(4, "d"), 0.4);  // Evicts "b", the strict LRU victim.
  EXPECT_FALSE(cache.Lookup(Key(2, "b")).has_value());
  EXPECT_TRUE(cache.Lookup(Key(3, "c")).has_value());
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(metrics.counter("proxy_cache.evictions").value(), 1u);

  // MRU -> LRU after the lookups above: c (just touched), d, a.
  const std::vector<ProxyCacheKey> order = cache.KeysByRecency();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].model, "c");
  EXPECT_EQ(order[1].model, "d");
  EXPECT_EQ(order[2].model, "a");
}

TEST(ProxyScoreCacheTest, SameAccessSequenceSameEvictionOrder) {
  // The eviction order is a pure function of the access sequence: two
  // caches fed identically agree on every victim.
  MetricsRegistry metrics;
  ProxyScoreCache a(4, &metrics), b(4, &metrics);
  const auto feed = [](ProxyScoreCache& cache) {
    for (int round = 0; round < 3; ++round) {
      for (uint64_t i = 0; i < 9; ++i) {
        const ProxyCacheKey key = Key(i % 6, std::string("m") + std::to_string(i % 5));
        if (!cache.Lookup(key).has_value()) {
          cache.Insert(key, static_cast<double>(i));
        }
      }
    }
  };
  feed(a);
  feed(b);
  EXPECT_EQ(a.KeysByRecency(), b.KeysByRecency());
  EXPECT_EQ(a.hits(), b.hits());
  EXPECT_EQ(a.evictions(), b.evictions());
}

TEST(ProxyScoreCacheTest, ZeroCapacityDisablesStorage) {
  MetricsRegistry metrics;
  ProxyScoreCache cache(0, &metrics);
  cache.Insert(Key(1, "a"), 0.5);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(Key(1, "a")).has_value());
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ProxyScoreCacheTest, InsertRefreshesExistingEntry) {
  MetricsRegistry metrics;
  ProxyScoreCache cache(2, &metrics);
  cache.Insert(Key(1, "a"), 0.1);
  cache.Insert(Key(2, "b"), 0.2);
  cache.Insert(Key(1, "a"), 0.9);  // Overwrite, no eviction.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(*cache.Lookup(Key(1, "a")), 0.9);
  // "a" was refreshed by the overwrite, so "b" is now the LRU victim.
  cache.Insert(Key(3, "c"), 0.3);
  EXPECT_FALSE(cache.Lookup(Key(2, "b")).has_value());
}

TEST(ProxyScoreCacheTest, ClearDropsEntriesKeepsCounters) {
  MetricsRegistry metrics;
  ProxyScoreCache cache(8, &metrics);
  cache.Insert(Key(1, "a"), 0.1);
  EXPECT_TRUE(cache.Lookup(Key(1, "a")).has_value());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(Key(1, "a")).has_value());
  EXPECT_EQ(cache.hits(), 1u);  // Retained across Clear.
}

TEST(ProxyScoreCacheTest, GetOrComputeCachesBitIdenticalScores) {
  DatasetRegistry registry = *DatasetRegistry::CreatePaperInventory();
  ModelZoo zoo = *ModelZoo::Create(NlpPaperZooSpecs());
  const Dataset* target = *registry.Find("mnli");
  auto scorer = MakeProxyScorer("leep").value();

  MetricsRegistry metrics;
  ProxyScoreCache cache(8, &metrics);
  auto first = cache.GetOrCompute(*scorer, zoo.model(0), *target);
  ASSERT_TRUE(first.ok());
  auto direct = scorer->Score(zoo.model(0), *target);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*first, *direct);  // Bit-identical, not approximately equal.

  auto second = cache.GetOrCompute(*scorer, zoo.model(0), *target);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, *first);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ProxyScoreCacheTest, GetOrComputeDoesNotCacheErrors) {
  DatasetRegistry registry = *DatasetRegistry::CreatePaperInventory();
  // CV model x NLP dataset: Score fails with a domain mismatch.
  ModelZoo zoo = *ModelZoo::Create(CvPaperZooSpecs());
  const Dataset* target = *registry.Find("mnli");
  auto scorer = MakeProxyScorer("leep").value();

  MetricsRegistry metrics;
  ProxyScoreCache cache(8, &metrics);
  EXPECT_FALSE(cache.GetOrCompute(*scorer, zoo.model(0), *target).ok());
  EXPECT_EQ(cache.size(), 0u);
  // The failure stays live: a later call fails again instead of serving a
  // stale cached error.
  EXPECT_FALSE(cache.GetOrCompute(*scorer, zoo.model(0), *target).ok());
}

}  // namespace
}  // namespace tps
