// NDJSON wire protocol round-trips, malformed-input rejection, and Status
// code transport. The protocol is the contract between tps_serve and any
// client, so every branch of the parser gets pinned here.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include "util/json.h"

namespace tps {
namespace serve {
namespace {

TEST(ParseRequestLineTest, MinimalSelect) {
  auto request = ParseRequestLine(R"({"target": "mnli"})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->command, WireCommand::kSelect);
  EXPECT_EQ(request->select.target, "mnli");
  // Defaults survive when fields are absent.
  EXPECT_EQ(request->select.top_k, 10u);
  EXPECT_EQ(request->select.threshold, 0.0);
  EXPECT_EQ(request->select.proxy, "leep");
  EXPECT_TRUE(request->select.proxies.empty());
  EXPECT_EQ(request->select.deadline_ms, 0.0);
  EXPECT_FALSE(request->select.want_trace);
}

TEST(ParseRequestLineTest, FullSelect) {
  auto request = ParseRequestLine(
      R"({"target": "boolq", "k": 5, "threshold": 0.4, "proxy": "nce",)"
      R"( "proxies": ["leep", "nce"], "deadline_ms": 250.5, "trace": true})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->select.target, "boolq");
  EXPECT_EQ(request->select.top_k, 5u);
  EXPECT_EQ(request->select.threshold, 0.4);
  EXPECT_EQ(request->select.proxy, "nce");
  ASSERT_EQ(request->select.proxies.size(), 2u);
  EXPECT_EQ(request->select.proxies[0], "leep");
  EXPECT_EQ(request->select.proxies[1], "nce");
  EXPECT_EQ(request->select.deadline_ms, 250.5);
  EXPECT_TRUE(request->select.want_trace);
}

TEST(ParseRequestLineTest, Commands) {
  EXPECT_EQ(ParseRequestLine(R"({"cmd": "ping"})")->command,
            WireCommand::kPing);
  EXPECT_EQ(ParseRequestLine(R"({"cmd": "stats"})")->command,
            WireCommand::kStats);
  EXPECT_EQ(ParseRequestLine(R"({"cmd": "shutdown"})")->command,
            WireCommand::kShutdown);
  EXPECT_FALSE(ParseRequestLine(R"({"cmd": "reboot"})").ok());
}

TEST(ParseRequestLineTest, ReloadFromStoreOrFiles) {
  auto from_store = ParseRequestLine(
      R"({"cmd": "reload", "store": "store.log", "id": "nlp"})");
  ASSERT_TRUE(from_store.ok()) << from_store.status().ToString();
  EXPECT_EQ(from_store->command, WireCommand::kReload);
  EXPECT_EQ(from_store->reload.store, "store.log");
  EXPECT_EQ(from_store->reload.id, "nlp");
  EXPECT_TRUE(from_store->reload.matrix.empty());

  auto from_files = ParseRequestLine(
      R"({"cmd": "reload", "matrix": "m.txt", "clustering": "c.txt"})");
  ASSERT_TRUE(from_files.ok()) << from_files.status().ToString();
  EXPECT_EQ(from_files->command, WireCommand::kReload);
  EXPECT_EQ(from_files->reload.matrix, "m.txt");
  EXPECT_EQ(from_files->reload.clustering, "c.txt");

  // No source at all is rejected up front, before touching the service.
  auto sourceless = ParseRequestLine(R"({"cmd": "reload"})");
  EXPECT_FALSE(sourceless.ok());
  EXPECT_TRUE(sourceless.status().IsInvalidArgument());
  // Wrong field type too.
  EXPECT_FALSE(ParseRequestLine(R"({"cmd": "reload", "store": 7})").ok());
}

TEST(ControlLinesTest, ReloadAck) {
  auto ack = json::Parse(ReloadAckLine(4));
  ASSERT_TRUE(ack.ok());
  EXPECT_TRUE(*ack->GetBool("ok"));
  EXPECT_TRUE(*ack->GetBool("reloaded"));
  EXPECT_EQ(*ack->GetNumber("artifact_version"), 4.0);
}

TEST(ParseRequestLineTest, MalformedInputRejected) {
  // Each of these must fail with InvalidArgument, never crash or accept.
  const char* bad[] = {
      "",                                  // Empty line.
      "not json at all",                   // Not JSON.
      "[1, 2, 3]",                         // Not an object.
      R"("just a string")",                // Not an object.
      "{}",                                // Select with no target.
      R"({"target": ""})",                 // Empty target.
      R"({"target": 42})",                 // Wrong type.
      R"({"target": "mnli", "k": 0})",     // k must be >= 1.
      R"({"target": "mnli", "k": -3})",    // Negative k.
      R"({"target": "mnli", "k": "x"})",   // Wrong type.
      R"({"target": "mnli", "threshold": -0.5})",    // Negative threshold.
      R"({"target": "mnli", "deadline_ms": -1})",    // Negative deadline.
      R"({"target": "mnli", "proxies": "leep"})",    // Not an array.
      R"({"target": "mnli", "proxies": [1, 2]})",    // Non-string entries.
      R"({"target": "mnli", "trace": "yes"})",       // Non-bool trace.
      R"({"cmd": 7})",                     // Non-string cmd.
  };
  for (const char* line : bad) {
    auto request = ParseRequestLine(line);
    EXPECT_FALSE(request.ok()) << "accepted: " << line;
    if (!request.ok()) {
      EXPECT_TRUE(request.status().IsInvalidArgument()) << line;
    }
  }
}

TEST(ParseRequestLineTest, UnknownKeysIgnored) {
  auto request = ParseRequestLine(
      R"({"target": "mnli", "future_field": {"a": 1}, "v": 2})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->select.target, "mnli");
}

TEST(RequestRoundTripTest, SelectSurvivesSerializeParse) {
  SelectionRequest request;
  request.target = "tweet_eval";
  request.top_k = 7;
  request.threshold = 0.25;
  request.proxy = "logme";
  request.proxies = {"leep", "knn"};
  request.deadline_ms = 1500.0;
  request.want_trace = true;

  auto parsed = ParseRequestLine(RequestToLine(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->command, WireCommand::kSelect);
  EXPECT_EQ(parsed->select.target, request.target);
  EXPECT_EQ(parsed->select.top_k, request.top_k);
  EXPECT_EQ(parsed->select.threshold, request.threshold);
  EXPECT_EQ(parsed->select.proxy, request.proxy);
  EXPECT_EQ(parsed->select.proxies, request.proxies);
  EXPECT_EQ(parsed->select.deadline_ms, request.deadline_ms);
  EXPECT_EQ(parsed->select.want_trace, request.want_trace);
}

TEST(ResponseRoundTripTest, SuccessSurvivesSerializeParse) {
  SelectionResponse response;
  response.status = Status::OK();
  response.target = "mnli";
  response.selected_model = "bert-large";
  response.selected_accuracy = 0.8375;
  response.training_epochs = 17.0;
  response.inference_epochs = 3.5;
  response.total_epochs = 20.5;
  response.survivors_per_stage = {10, 5, 2, 1};
  response.wall_ms = 1.25;
  response.cache_hits = 7;
  response.cache_misses = 3;
  response.artifact_version = 3;

  const std::string line = ResponseToLine(response);
  // One line per reply: the framing newline is added by the transport.
  EXPECT_EQ(line.find('\n'), std::string::npos);

  auto parsed = ParseResponseLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->status.ok());
  EXPECT_EQ(parsed->target, response.target);
  EXPECT_EQ(parsed->selected_model, response.selected_model);
  EXPECT_EQ(parsed->selected_accuracy, response.selected_accuracy);
  EXPECT_EQ(parsed->training_epochs, response.training_epochs);
  EXPECT_EQ(parsed->inference_epochs, response.inference_epochs);
  EXPECT_EQ(parsed->total_epochs, response.total_epochs);
  EXPECT_EQ(parsed->survivors_per_stage, response.survivors_per_stage);
  EXPECT_EQ(parsed->wall_ms, response.wall_ms);
  EXPECT_EQ(parsed->cache_hits, response.cache_hits);
  EXPECT_EQ(parsed->cache_misses, response.cache_misses);
  EXPECT_EQ(parsed->artifact_version, response.artifact_version);
  EXPECT_FALSE(parsed->has_trace);
}

TEST(ResponseRoundTripTest, ErrorTransportsStatusCode) {
  SelectionResponse response;
  response.status = Status::NotFound("unknown dataset 'xyz'");
  response.target = "xyz";
  const std::string line = ResponseToLine(response);
  // Error form is {"ok":false,...} with the code name.
  EXPECT_NE(line.find(R"("ok":false)"), std::string::npos);
  EXPECT_NE(line.find("NotFound"), std::string::npos);

  // The client surfaces the transported error as the call's own Status.
  auto parsed = ParseResponseLine(line);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsNotFound());
  EXPECT_NE(parsed.status().message().find("unknown dataset"),
            std::string::npos);
}

TEST(ResponseRoundTripTest, EveryCodeNameRestores) {
  const Status statuses[] = {
      Status::InvalidArgument("a"), Status::NotFound("b"),
      Status::AlreadyExists("c"),   Status::OutOfRange("d"),
      Status::FailedPrecondition("e"), Status::Internal("f"),
      Status::Unimplemented("g"),   Status::IOError("h"),
      Status::DeadlineExceeded("i"), Status::Unavailable("j"),
  };
  for (const Status& status : statuses) {
    auto parsed = ParseResponseLine(ErrorToLine(status));
    ASSERT_FALSE(parsed.ok()) << status.ToString();
    EXPECT_EQ(parsed.status().code(), status.code()) << status.ToString();
    EXPECT_EQ(parsed.status().message(), status.message());
  }
}

TEST(ResponseRoundTripTest, TraceEmbedsAsJsonNotString) {
  SelectionResponse response;
  response.status = Status::OK();
  response.target = "mnli";
  response.selected_model = "m";
  response.has_trace = true;
  response.trace.target = "mnli";

  const std::string line = ResponseToLine(response);
  auto doc = json::Parse(line);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* trace = doc->Find("trace");
  ASSERT_NE(trace, nullptr);
  // The trace is a JSON object spliced into the reply, not an escaped
  // string blob.
  ASSERT_TRUE(trace->is_object());

  auto parsed = ParseResponseLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->has_trace);
  EXPECT_EQ(parsed->trace.target, "mnli");
}

TEST(ControlLinesTest, PingStatsShutdown) {
  auto pong = json::Parse(PongLine());
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(*pong->GetBool("ok"));
  EXPECT_TRUE(*pong->GetBool("pong"));

  ServiceStats stats;
  stats.queue_depth = 3;
  stats.artifact_version = 2;
  stats.reloads = 1;
  stats.admitted = 10;
  stats.rejected = 2;
  stats.completed = 7;
  stats.deadline_exceeded = 1;
  stats.errors = 4;
  stats.cache_hits = 100;
  stats.cache_misses = 50;
  stats.cache_evictions = 5;
  stats.cache_entries = 45;
  auto parsed = json::Parse(StatsToLine(stats));
  ASSERT_TRUE(parsed.ok());
  const json::Value* object = parsed->Find("stats");
  ASSERT_NE(object, nullptr);
  EXPECT_EQ(*object->GetNumber("queue_depth"), 3.0);
  EXPECT_EQ(*object->GetNumber("artifact_version"), 2.0);
  EXPECT_EQ(*object->GetNumber("reloads"), 1.0);
  EXPECT_EQ(*object->GetNumber("admitted"), 10.0);
  EXPECT_EQ(*object->GetNumber("rejected"), 2.0);
  EXPECT_EQ(*object->GetNumber("completed"), 7.0);
  EXPECT_EQ(*object->GetNumber("deadline_exceeded"), 1.0);
  EXPECT_EQ(*object->GetNumber("errors"), 4.0);
  EXPECT_EQ(*object->GetNumber("cache_hits"), 100.0);
  EXPECT_EQ(*object->GetNumber("cache_misses"), 50.0);
  EXPECT_EQ(*object->GetNumber("cache_evictions"), 5.0);
  EXPECT_EQ(*object->GetNumber("cache_entries"), 45.0);

  auto ack = json::Parse(ShutdownAckLine());
  ASSERT_TRUE(ack.ok());
  EXPECT_TRUE(*ack->GetBool("shutting_down"));
}

TEST(ParseResponseLineTest, MalformedReplyRejected) {
  EXPECT_FALSE(ParseResponseLine("").ok());
  EXPECT_FALSE(ParseResponseLine("garbage").ok());
  EXPECT_FALSE(ParseResponseLine("[]").ok());
  // Missing "ok" key.
  EXPECT_FALSE(ParseResponseLine(R"({"target": "mnli"})").ok());
  // Unknown code name falls back to Internal rather than crashing or
  // silently reading as OK.
  auto unknown = ParseResponseLine(
      R"({"ok": false, "code": "NoSuchCode", "error": "x"})");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace serve
}  // namespace tps
