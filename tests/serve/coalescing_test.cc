// Cross-request proxy coalescing: N concurrent identical queries compute
// each proxy exactly once; different keys never coalesce; a cancelled
// leader hands its flight to a live waiter instead of failing it; and
// coalescing on vs off is bit-identical (it changes cost, never answers).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/service.h"
#include "transfer/proxy_flight.h"

namespace tps {
namespace serve {
namespace {

// --- ProxyFlightGroup unit tests (deterministic via latches) ----------------

ProxyCacheKey Key(uint64_t fingerprint, const std::string& model) {
  ProxyCacheKey key;
  key.dataset_fingerprint = fingerprint;
  key.model = model;
  key.scorer = "leep";
  return key;
}

TEST(ProxyFlightGroupTest, SingleCallerComputesDirectly) {
  MetricsRegistry metrics;
  ProxyFlightGroup group(&metrics);
  auto result = group.ComputeShared(
      Key(1, "m"), /*poll_cancel=*/nullptr, /*lookup=*/nullptr,
      []() -> StatusOr<double> { return 3.5; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 3.5);
  EXPECT_EQ(group.leaders(), 1u);
  EXPECT_EQ(group.waiters(), 0u);
  EXPECT_EQ(group.computes(), 1u);
  EXPECT_EQ(group.handoffs(), 0u);
  EXPECT_EQ(group.InFlight(), 0u);
  EXPECT_EQ(metrics.counter("proxy_flight.computes").value(), 1u);
}

TEST(ProxyFlightGroupTest, ErrorsShareWithWaitersAndDoNotCountAsComputes) {
  MetricsRegistry metrics;
  ProxyFlightGroup group(&metrics);
  auto result = group.ComputeShared(
      Key(1, "m"), nullptr, nullptr,
      []() -> StatusOr<double> {
        return Status::InvalidArgument("deterministic failure");
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(group.computes(), 0u);
  EXPECT_EQ(group.InFlight(), 0u);
}

TEST(ProxyFlightGroupTest, ConcurrentIdenticalKeysComputeExactlyOnce) {
  MetricsRegistry metrics;
  ProxyFlightGroup group(&metrics);
  ProxyScoreCache cache(64, &metrics);
  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 20;
  std::atomic<uint64_t> compute_calls{0};

  for (size_t round = 0; round < kRounds; ++round) {
    const ProxyCacheKey key = Key(round, "model");
    std::vector<std::thread> threads;
    std::vector<StatusOr<double>> results(kThreads, StatusOr<double>(0.0));
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        results[t] = group.GetOrCompute(
            &cache, key, /*poll_cancel=*/nullptr,
            [&]() -> StatusOr<double> {
              compute_calls.fetch_add(1);
              return static_cast<double>(round) + 0.25;
            });
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (const StatusOr<double>& result : results) {
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(*result, static_cast<double>(round) + 0.25);
    }
  }
  // The exactly-once guarantee: the leader inserts into the cache before
  // its flight retires, so no interleaving of the 8 threads can compute a
  // key twice.
  EXPECT_EQ(compute_calls.load(), kRounds);
  EXPECT_EQ(group.computes(), kRounds);
  EXPECT_EQ(metrics.counter("proxy_flight.computes").value(), kRounds);
  // Conservation: every arrival either hit the cache before the flight,
  // led a flight, or waited on one.
  EXPECT_EQ(group.leaders() + group.waiters() + cache.hits(),
            kThreads * kRounds);
  EXPECT_EQ(group.InFlight(), 0u);
  EXPECT_EQ(cache.size(), kRounds);
}

TEST(ProxyFlightGroupTest, DistinctKeysNeverCoalesce) {
  MetricsRegistry metrics;
  ProxyFlightGroup group(&metrics);
  // Serial requests over three distinct keys: every call must lead its own
  // flight and compute; nothing waits.
  for (uint64_t fp : {1u, 2u, 3u}) {
    auto result = group.ComputeShared(
        Key(fp, "m"), nullptr, nullptr,
        [fp]() -> StatusOr<double> { return static_cast<double>(fp); });
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, static_cast<double>(fp));
  }
  EXPECT_EQ(group.leaders(), 3u);
  EXPECT_EQ(group.computes(), 3u);
  EXPECT_EQ(group.waiters(), 0u);
  EXPECT_EQ(group.handoffs(), 0u);
}

TEST(ProxyFlightGroupTest, CancelledLeaderHandsOffToLiveWaiter) {
  MetricsRegistry metrics;
  ProxyFlightGroup group(&metrics);
  const ProxyCacheKey key = Key(9, "m");

  std::promise<void> leader_in_compute;
  std::promise<void> waiter_joined;
  std::shared_future<void> waiter_joined_future =
      waiter_joined.get_future().share();

  // Leader: blocks inside compute until the waiter has joined, then
  // reports its own cancellation. Only this caller may see the error.
  std::thread leader([&] {
    auto result = group.ComputeShared(
        key, nullptr, nullptr,
        [&]() -> StatusOr<double> {
          leader_in_compute.set_value();
          waiter_joined_future.wait();
          return Status::DeadlineExceeded("leader request expired");
        });
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsDeadlineExceeded());
  });

  leader_in_compute.get_future().wait();
  // Waiter: joins while the leader is mid-compute; after promotion it runs
  // its OWN compute closure and must succeed.
  std::thread waiter([&] {
    auto result = group.ComputeShared(
        key, nullptr, nullptr, [&]() -> StatusOr<double> { return 42.0; });
    EXPECT_TRUE(result.ok());
    if (result.ok()) {
      EXPECT_EQ(*result, 42.0);
    }
  });
  while (group.waiters() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  waiter_joined.set_value();
  leader.join();
  waiter.join();

  EXPECT_EQ(group.handoffs(), 1u);
  EXPECT_EQ(group.computes(), 1u);  // Only the promoted waiter's compute.
  EXPECT_EQ(group.leaders(), 2u);   // Original + promoted.
  EXPECT_EQ(metrics.counter("proxy_flight.handoffs").value(), 1u);
  EXPECT_EQ(group.InFlight(), 0u);
}

TEST(ProxyFlightGroupTest, WaiterWithExpiredDeadlineLeavesFlightIntact) {
  MetricsRegistry metrics;
  ProxyFlightGroup group(&metrics);
  const ProxyCacheKey key = Key(11, "m");

  std::promise<void> leader_in_compute;
  std::promise<void> waiter_left;
  std::shared_future<void> waiter_left_future =
      waiter_left.get_future().share();

  std::thread leader([&] {
    auto result = group.ComputeShared(
        key, nullptr, nullptr,
        [&]() -> StatusOr<double> {
          leader_in_compute.set_value();
          waiter_left_future.wait();
          return 7.0;
        });
    EXPECT_TRUE(result.ok());
    if (result.ok()) {
      EXPECT_EQ(*result, 7.0);
    }
  });

  leader_in_compute.get_future().wait();
  // Waiter whose own deadline is already expired: it must leave without
  // disturbing the leader's flight.
  auto result = group.ComputeShared(
      key,
      /*poll_cancel=*/
      []() { return Status::DeadlineExceeded("waiter expired"); },
      nullptr, []() -> StatusOr<double> { return -1.0; });
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
  waiter_left.set_value();
  leader.join();

  EXPECT_EQ(group.handoffs(), 0u);
  EXPECT_EQ(group.computes(), 1u);
  EXPECT_EQ(group.InFlight(), 0u);
}

// --- Service-level coalescing ----------------------------------------------

class CoalescingServiceTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    artifacts_ = new ServiceArtifacts(
        *ServiceArtifacts::Build(TaskDomain::kNLP));
  }

  static ServiceArtifacts Artifacts() { return *artifacts_; }

  static SelectionRequest Request(const std::string& target) {
    SelectionRequest request;
    request.target = target;
    return request;
  }

  static ServiceArtifacts* artifacts_;
};

ServiceArtifacts* CoalescingServiceTest::artifacts_ = nullptr;

TEST_F(CoalescingServiceTest, StampedeComputesEachProxyExactlyOnce) {
  constexpr int kWorkers = 4;
  MetricsRegistry metrics;
  ServiceOptions options;
  options.worker_threads = kWorkers;
  options.metrics = &metrics;

  // Barrier: no worker starts its request until all four hold one, so the
  // four identical queries are genuinely concurrent on a cold cache.
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  options.pre_handle_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return arrived >= kWorkers; });
  };

  auto service_or = SelectionService::Create(Artifacts(), options);
  ASSERT_TRUE(service_or.ok());
  auto& service = *service_or;

  std::vector<std::future<SelectionResponse>> futures;
  for (int i = 0; i < kWorkers; ++i) {
    futures.push_back(service->Submit(Request("mnli")));
  }
  std::vector<SelectionResponse> responses;
  for (auto& future : futures) responses.push_back(future.get());

  for (const SelectionResponse& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    // Coalesced answers are the leader's answer — identical bits.
    EXPECT_EQ(response.selected_model, responses[0].selected_model);
    EXPECT_EQ(response.selected_accuracy, responses[0].selected_accuracy);
    EXPECT_EQ(response.total_epochs, responses[0].total_epochs);
  }

  // Exactly-once: each unique (target, model, scorer) key was computed one
  // time no matter how the four requests interleaved; the cache holds one
  // entry per key afterwards.
  ASSERT_NE(service->flight_group(), nullptr);
  EXPECT_GT(service->flight_group()->computes(), 0u);
  EXPECT_EQ(service->flight_group()->computes(), service->cache()->size());
  EXPECT_EQ(metrics.counter("proxy_flight.computes").value(),
            service->flight_group()->computes());
  EXPECT_EQ(service->flight_group()->InFlight(), 0u);
}

TEST_F(CoalescingServiceTest, MixedKeyQueriesDoNotCoalesce) {
  MetricsRegistry metrics;
  ServiceOptions options;
  options.worker_threads = 0;  // Serial: Handle on this thread.
  options.metrics = &metrics;
  auto service_or = SelectionService::Create(Artifacts(), options);
  ASSERT_TRUE(service_or.ok());
  auto& service = *service_or;

  const SelectionResponse first = service->Handle(Request("mnli"));
  const SelectionResponse second = service->Handle(Request("sst2"));
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();

  ASSERT_NE(service->flight_group(), nullptr);
  // Serial distinct-target queries: every flight had one member; nothing
  // waited, nothing was handed off, and each key computed once.
  EXPECT_EQ(service->flight_group()->waiters(), 0u);
  EXPECT_EQ(service->flight_group()->handoffs(), 0u);
  EXPECT_EQ(service->flight_group()->computes(),
            service->flight_group()->leaders());
  EXPECT_EQ(service->flight_group()->computes(), service->cache()->size());
}

TEST_F(CoalescingServiceTest, CoalescingOnEqualsOffBitForBit) {
  ServiceOptions on;
  on.worker_threads = 0;
  ServiceOptions off = on;
  off.coalesce_proxies = false;

  auto service_on_or = SelectionService::Create(Artifacts(), on);
  auto service_off_or = SelectionService::Create(Artifacts(), off);
  ASSERT_TRUE(service_on_or.ok());
  ASSERT_TRUE(service_off_or.ok());
  EXPECT_EQ((*service_off_or)->flight_group(), nullptr);

  for (const char* target : {"mnli", "sst2", "mnli"}) {
    const SelectionResponse a = (*service_on_or)->Handle(Request(target));
    const SelectionResponse b = (*service_off_or)->Handle(Request(target));
    ASSERT_TRUE(a.status.ok()) << a.status.ToString();
    ASSERT_TRUE(b.status.ok()) << b.status.ToString();
    EXPECT_EQ(a.selected_model, b.selected_model);
    EXPECT_EQ(a.selected_accuracy, b.selected_accuracy);
    EXPECT_EQ(a.training_epochs, b.training_epochs);
    EXPECT_EQ(a.inference_epochs, b.inference_epochs);
    EXPECT_EQ(a.total_epochs, b.total_epochs);
    EXPECT_EQ(a.survivors_per_stage, b.survivors_per_stage);
  }
}

}  // namespace
}  // namespace serve
}  // namespace tps
