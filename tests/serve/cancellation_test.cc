// CancelToken unit tests plus the all-or-nothing property: tripping the
// token at EVERY cooperative checkpoint of a two-phase run yields a clean
// DeadlineExceeded — never a partial or corrupted result — and a token
// that never trips leaves the result bit-identical to an untokened run.

#include "core/cancellation.h"

#include <thread>

#include <gtest/gtest.h>

#include "core/two_phase.h"
#include "data/registry.h"
#include "model/paper_zoo.h"
#include "util/thread_pool.h"

namespace tps {
namespace {

TEST(CancelTokenTest, FreshTokenPasses) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check("anywhere").ok());
}

TEST(CancelTokenTest, CancelTripsAndLatches) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  const Status status = token.Check("phase entry");
  EXPECT_TRUE(status.IsDeadlineExceeded());
  EXPECT_NE(status.message().find("phase entry"), std::string::npos);
  EXPECT_TRUE(token.Check("later").IsDeadlineExceeded());
}

TEST(CancelTokenTest, ExpiredDeadlineTrips) {
  CancelToken token;
  token.SetDeadlineAfterMillis(-1.0);  // Already in the past.
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.Check("entry").IsDeadlineExceeded());
}

TEST(CancelTokenTest, FutureDeadlinePassesNow) {
  CancelToken token;
  token.SetDeadlineAfterMillis(60'000.0);
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check("entry").ok());
}

TEST(CancelTokenTest, CountdownTripsOnExactCheck) {
  CancelToken token;
  token.CancelAfterChecks(2);
  EXPECT_TRUE(token.Check("1").ok());
  EXPECT_TRUE(token.Check("2").ok());
  EXPECT_TRUE(token.Check("3").IsDeadlineExceeded());  // Trips here.
  EXPECT_TRUE(token.Check("4").IsDeadlineExceeded());  // Latched.
}

TEST(CancelTokenTest, CountdownZeroTripsFirstCheck) {
  CancelToken token;
  token.CancelAfterChecks(0);
  EXPECT_TRUE(token.Check("first").IsDeadlineExceeded());
}

TEST(CancelTokenTest, NullTokenHelperAlwaysPasses) {
  EXPECT_TRUE(CheckCancel(nullptr, "anywhere").ok());
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(CheckCancel(&token, "spot").IsDeadlineExceeded());
}

TEST(CancelTokenTest, ConcurrentCheckersAgreeAfterTrip) {
  CancelToken token;
  token.CancelAfterChecks(100);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (!token.Check("race").ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // 400 checks against a 100-check budget: the trip happened, and once
  // tripped every later check failed (at least 400 - 101 failures).
  EXPECT_TRUE(token.cancelled());
  EXPECT_GE(failures.load(), 400 - 101);
  EXPECT_TRUE(token.Check("after").IsDeadlineExceeded());
}

class CancellationPipelineTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    simulator_ = new FineTuneSimulator();
    zoo_ = new ModelZoo(*ModelZoo::Create(NlpPaperZooSpecs()));
    matrix_ = new PerformanceMatrix(*PerformanceMatrix::Build(
        *zoo_, registry_->Benchmarks(TaskDomain::kNLP), *simulator_,
        Hyperparams::DefaultsFor(TaskDomain::kNLP)));
    clustering_ = new ModelClustering(
        *ClusterModels(*matrix_, *zoo_, ModelClusteringOptions()));
  }

  static DatasetRegistry* registry_;
  static FineTuneSimulator* simulator_;
  static ModelZoo* zoo_;
  static PerformanceMatrix* matrix_;
  static ModelClustering* clustering_;
};

DatasetRegistry* CancellationPipelineTest::registry_ = nullptr;
FineTuneSimulator* CancellationPipelineTest::simulator_ = nullptr;
ModelZoo* CancellationPipelineTest::zoo_ = nullptr;
PerformanceMatrix* CancellationPipelineTest::matrix_ = nullptr;
ModelClustering* CancellationPipelineTest::clustering_ = nullptr;

TEST_F(CancellationPipelineTest, TripAtEveryCheckpointIsAllOrNothing) {
  // Serial runs poll the token in a deterministic order, so trip-after-n
  // walks the cancellation through every cooperative checkpoint exactly
  // once. For every n below the run's total check count the pipeline must
  // return DeadlineExceeded; at the first n that completes, the report
  // must be bit-identical to the untokened baseline.
  TwoPhaseSelector selector(zoo_, matrix_, clustering_, simulator_);
  const Dataset& target = **registry_->Find("mnli");
  const TwoPhaseReport baseline = *selector.Select(target, TwoPhaseOptions());

  constexpr int64_t kMaxChecks = 10'000;
  int64_t completed_at = -1;
  for (int64_t n = 0; n < kMaxChecks; ++n) {
    CancelToken token;
    token.CancelAfterChecks(n);
    TwoPhaseOptions options;
    options.cancel = &token;
    auto report_or = selector.Select(target, options);
    if (report_or.ok()) {
      completed_at = n;
      EXPECT_EQ(report_or->selection.selected_model,
                baseline.selection.selected_model);
      EXPECT_EQ(report_or->selection.selected_accuracy,
                baseline.selection.selected_accuracy);
      EXPECT_EQ(report_or->selection.survivors_per_stage,
                baseline.selection.survivors_per_stage);
      EXPECT_EQ(report_or->budget.total_epochs(),
                baseline.budget.total_epochs());
      break;
    }
    EXPECT_TRUE(report_or.status().IsDeadlineExceeded())
        << "n=" << n << ": " << report_or.status().ToString();
  }
  ASSERT_GE(completed_at, 1) << "pipeline never completed within "
                             << kMaxChecks << " checks";
  // Sanity: the pipeline really does poll more than once per run.
  EXPECT_GT(completed_at, 3);
}

TEST_F(CancellationPipelineTest, ParallelTripIsCleanOrComplete) {
  // Under a pool the trip point races the fan-out, so which outcome we get
  // is nondeterministic — but it must always be one of exactly two: a
  // DeadlineExceeded error or a result identical to the baseline.
  TwoPhaseSelector selector(zoo_, matrix_, clustering_, simulator_);
  ThreadPool pool(3);
  const Hyperparams hp = Hyperparams::DefaultsFor(TaskDomain::kNLP);
  const Dataset& target = **registry_->Find("boolq");
  const TwoPhaseReport baseline =
      *selector.Select(target, TwoPhaseOptions(), hp, &pool);

  for (int64_t n : {0, 1, 2, 5, 10, 20, 50}) {
    CancelToken token;
    token.CancelAfterChecks(n);
    TwoPhaseOptions options;
    options.cancel = &token;
    auto report_or = selector.Select(target, options, hp, &pool);
    if (report_or.ok()) {
      EXPECT_EQ(report_or->selection.selected_model,
                baseline.selection.selected_model);
      EXPECT_EQ(report_or->selection.selected_accuracy,
                baseline.selection.selected_accuracy);
    } else {
      EXPECT_TRUE(report_or.status().IsDeadlineExceeded())
          << report_or.status().ToString();
    }
  }
}

TEST_F(CancellationPipelineTest, PreCancelledTokenNeverTouchesPipeline) {
  TwoPhaseSelector selector(zoo_, matrix_, clustering_, simulator_);
  const Dataset& target = **registry_->Find("mnli");
  CancelToken token;
  token.Cancel();
  TwoPhaseOptions options;
  options.cancel = &token;
  MetricsRegistry metrics;
  options.metrics = &metrics;
  auto report_or = selector.Select(target, options);
  ASSERT_FALSE(report_or.ok());
  EXPECT_TRUE(report_or.status().IsDeadlineExceeded());
  // Entry check fires before any proxy work.
  EXPECT_EQ(metrics.counter("recall.proxies_computed").value(), 0u);
}

}  // namespace
}  // namespace tps
