#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "core/model_clusterer.h"
#include "index/ivf_index.h"
#include "serve/artifacts.h"
#include "serve/service.h"

namespace tps {
namespace serve {
namespace {

// End-to-end indexed serving: the published ServiceArtifacts carry an
// IvfIndex, requests route through it (reporting the backend), the
// per-request A/B switch falls back to the legacy sweep, and a hot Reload
// can introduce an index to a running service.

ServiceArtifacts BuildArtifacts(bool with_index) {
  auto artifacts = ServiceArtifacts::Build(TaskDomain::kNLP);
  EXPECT_TRUE(artifacts.ok()) << artifacts.status().message();
  if (!with_index) return *std::move(artifacts);

  IvfIndexOptions options;
  options.propagation_neighbors = 0;  // Exact propagation: the paper zoo
                                      // is small, so serve it exactly.
  auto index = IvfIndex::Build(artifacts->matrix.ModelVectors(),
                               artifacts->matrix.ModelAverageAccuracies(),
                               options);
  EXPECT_TRUE(index.ok()) << index.status().message();
  // The index partitioning doubles as the serving clustering, so the
  // legacy fallback ranks the same partitions the indexed path probes.
  auto clustering = ClusteringFromIndexStructure(index->structure());
  EXPECT_TRUE(clustering.ok()) << clustering.status().message();
  artifacts->clustering = *std::move(clustering);
  artifacts->index = std::make_shared<const IvfIndex>(*std::move(index));
  EXPECT_TRUE(artifacts->Validate().ok());
  return *std::move(artifacts);
}

ServiceOptions LightOptions() {
  ServiceOptions options;
  options.worker_threads = 0;  // Handle() only — no queue draining needed.
  return options;
}

TEST(IndexServingTest, ResponsesReportTheIndexBackend) {
  auto service = SelectionService::Create(BuildArtifacts(true),
                                          LightOptions());
  ASSERT_TRUE(service.ok()) << service.status().message();
  SelectionRequest request;
  request.target = "mnli";
  const SelectionResponse response = (*service)->Handle(request);
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_EQ(response.index_backend, "ivf");
  EXPECT_FALSE(response.selected_model.empty());
}

TEST(IndexServingTest, UseIndexFalseFallsBackToTheLegacySweep) {
  auto service = SelectionService::Create(BuildArtifacts(true),
                                          LightOptions());
  ASSERT_TRUE(service.ok()) << service.status().message();

  SelectionRequest indexed;
  indexed.target = "mnli";
  // Probe everything: with exact propagation the indexed path is
  // bit-identical to the sweep, so the A/B switch must not change the
  // answer — only the backend attribution.
  indexed.nprobe = 1000000;
  const SelectionResponse indexed_response = (*service)->Handle(indexed);
  ASSERT_TRUE(indexed_response.status.ok())
      << indexed_response.status.message();
  EXPECT_EQ(indexed_response.index_backend, "ivf");

  SelectionRequest legacy = indexed;
  legacy.use_index = false;
  const SelectionResponse legacy_response = (*service)->Handle(legacy);
  ASSERT_TRUE(legacy_response.status.ok())
      << legacy_response.status.message();
  EXPECT_TRUE(legacy_response.index_backend.empty());
  EXPECT_EQ(legacy_response.selected_model, indexed_response.selected_model);
  EXPECT_EQ(legacy_response.selected_accuracy,
            indexed_response.selected_accuracy);
  EXPECT_EQ(legacy_response.total_epochs, indexed_response.total_epochs);
  EXPECT_EQ(legacy_response.survivors_per_stage,
            indexed_response.survivors_per_stage);
}

TEST(IndexServingTest, NprobeBoundsTheProxyCost) {
  auto service = SelectionService::Create(BuildArtifacts(true),
                                          LightOptions());
  ASSERT_TRUE(service.ok()) << service.status().message();

  SelectionRequest narrow;
  narrow.target = "mnli";
  narrow.nprobe = 2;
  const SelectionResponse narrow_response = (*service)->Handle(narrow);
  ASSERT_TRUE(narrow_response.status.ok())
      << narrow_response.status.message();

  SelectionRequest full = narrow;
  full.nprobe = 1000000;
  const SelectionResponse full_response = (*service)->Handle(full);
  ASSERT_TRUE(full_response.status.ok()) << full_response.status.message();

  // Fewer probed partitions -> fewer proxy forward passes charged.
  EXPECT_LT(narrow_response.inference_epochs,
            full_response.inference_epochs);
}

TEST(IndexServingTest, IndexFreeArtifactsIgnoreTheRequestFlag) {
  auto service = SelectionService::Create(BuildArtifacts(false),
                                          LightOptions());
  ASSERT_TRUE(service.ok()) << service.status().message();
  SelectionRequest request;
  request.target = "mnli";
  request.use_index = true;  // No index published: served legacy, not an
                             // error.
  const SelectionResponse response = (*service)->Handle(request);
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_TRUE(response.index_backend.empty());
}

TEST(IndexServingTest, ReloadIntroducesAnIndexWithoutRestart) {
  auto service = SelectionService::Create(BuildArtifacts(false),
                                          LightOptions());
  ASSERT_TRUE(service.ok()) << service.status().message();
  SelectionRequest request;
  request.target = "mnli";

  const SelectionResponse before = (*service)->Handle(request);
  ASSERT_TRUE(before.status.ok());
  EXPECT_TRUE(before.index_backend.empty());
  EXPECT_EQ(before.artifact_version, 1u);

  ASSERT_TRUE((*service)->Reload(BuildArtifacts(true)).ok());

  const SelectionResponse after = (*service)->Handle(request);
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.index_backend, "ivf");
  EXPECT_EQ(after.artifact_version, 2u);
}

}  // namespace
}  // namespace serve
}  // namespace tps
