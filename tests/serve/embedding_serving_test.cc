#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "recall/embed_trainer.h"
#include "serve/artifacts.h"
#include "serve/service.h"

namespace tps {
namespace serve {
namespace {

// End-to-end serving through the pluggable recall backends: requests route
// by name, artifacts without trained embeddings reject the embedding and
// hybrid backends with the right codes, a hot Reload can introduce
// embeddings to a running service, and a mid-flight swap between two
// different embedding artifacts never mixes versions.

class EmbeddingServingTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto base = ServiceArtifacts::Build(TaskDomain::kNLP);
    ASSERT_TRUE(base.ok()) << base.status().message();
    base_ = new ServiceArtifacts(*std::move(base));

    embedded_a_ = new ServiceArtifacts(WithEmbeddings(*base_, 7));
    embedded_b_ = new ServiceArtifacts(WithEmbeddings(*base_, 99));

    oracle_a_ = new std::map<std::string, SelectionResponse>(
        OracleAnswers(*embedded_a_));
    oracle_b_ = new std::map<std::string, SelectionResponse>(
        OracleAnswers(*embedded_b_));

    // The two embedding artifacts must rank differently somewhere, or the
    // version-mixing checks below are vacuous.
    bool differ = false;
    for (const auto& [target, a] : *oracle_a_) {
      const SelectionResponse& b = oracle_b_->at(target);
      if (a.report.recall.ranked.size() != b.report.recall.ranked.size()) {
        differ = true;  // Different embedding IVFs probed different lists.
        continue;
      }
      for (size_t i = 0; i < a.report.recall.ranked.size(); ++i) {
        if (a.report.recall.ranked[i].recall_score !=
                b.report.recall.ranked[i].recall_score ||
            a.report.recall.ranked[i].model_index !=
                b.report.recall.ranked[i].model_index) {
          differ = true;
        }
      }
    }
    ASSERT_TRUE(differ) << "seeds 7 and 99 trained identical embeddings";
  }

  /// A copy of `base` with two-tower embeddings trained at `seed` attached
  /// (short curve: serving only needs *an* artifact, not a converged one).
  static ServiceArtifacts WithEmbeddings(const ServiceArtifacts& base,
                                         uint64_t seed) {
    ServiceArtifacts artifacts = base;
    recall::EmbeddingConfig config;
    config.epochs = 60;
    config.seed = seed;
    auto trained = recall::TrainRecallEmbeddings(
        artifacts.matrix, artifacts.registry.Benchmarks(artifacts.domain),
        config);
    EXPECT_TRUE(trained.ok()) << trained.status().message();
    EXPECT_TRUE(
        artifacts.AttachEmbeddings(std::move(trained->embeddings)).ok());
    return artifacts;
  }

  static ServiceOptions LightOptions() {
    ServiceOptions options;
    options.worker_threads = 0;  // Handle() only.
    return options;
  }

  static SelectionRequest EmbeddingRequest(const std::string& target) {
    SelectionRequest request;
    request.target = target;
    request.recall_backend = "embedding";
    return request;
  }

  /// Ground truth per artifact set: a single-threaded service answers
  /// every target once through the embedding backend.
  static std::map<std::string, SelectionResponse> OracleAnswers(
      const ServiceArtifacts& artifacts) {
    auto service =
        SelectionService::Create(ServiceArtifacts(artifacts), LightOptions());
    EXPECT_TRUE(service.ok()) << service.status().message();
    std::map<std::string, SelectionResponse> answers;
    for (const Dataset* target :
         artifacts.registry.Targets(artifacts.domain)) {
      answers[target->name()] =
          (*service)->Handle(EmbeddingRequest(target->name()));
      EXPECT_TRUE(answers[target->name()].status.ok());
    }
    return answers;
  }

  /// Bit-identical answer check, recall ranking included. EXPECT_EQ on the
  /// doubles deliberately: an answer derived from the wrong artifact
  /// version must fail, not "be close".
  static void ExpectSameAnswer(const SelectionResponse& got,
                               const SelectionResponse& want) {
    ASSERT_TRUE(got.status.ok()) << got.status.ToString();
    EXPECT_EQ(got.selected_model, want.selected_model);
    EXPECT_EQ(got.selected_accuracy, want.selected_accuracy);
    EXPECT_EQ(got.training_epochs, want.training_epochs);
    EXPECT_EQ(got.inference_epochs, want.inference_epochs);
    EXPECT_EQ(got.total_epochs, want.total_epochs);
    EXPECT_EQ(got.survivors_per_stage, want.survivors_per_stage);
    ASSERT_EQ(got.report.recall.ranked.size(),
              want.report.recall.ranked.size());
    for (size_t i = 0; i < got.report.recall.ranked.size(); ++i) {
      EXPECT_EQ(got.report.recall.ranked[i].model_index,
                want.report.recall.ranked[i].model_index);
      EXPECT_EQ(got.report.recall.ranked[i].recall_score,
                want.report.recall.ranked[i].recall_score);
    }
  }

  static const std::map<std::string, SelectionResponse>& OracleFor(
      uint64_t version) {
    // The swap test publishes a (v1) -> b (v2) -> a (v3).
    return version == 2 ? *oracle_b_ : *oracle_a_;
  }

  static ServiceArtifacts* base_;
  static ServiceArtifacts* embedded_a_;
  static ServiceArtifacts* embedded_b_;
  static std::map<std::string, SelectionResponse>* oracle_a_;
  static std::map<std::string, SelectionResponse>* oracle_b_;
};

ServiceArtifacts* EmbeddingServingTest::base_ = nullptr;
ServiceArtifacts* EmbeddingServingTest::embedded_a_ = nullptr;
ServiceArtifacts* EmbeddingServingTest::embedded_b_ = nullptr;
std::map<std::string, SelectionResponse>* EmbeddingServingTest::oracle_a_ =
    nullptr;
std::map<std::string, SelectionResponse>* EmbeddingServingTest::oracle_b_ =
    nullptr;

TEST_F(EmbeddingServingTest, EmbeddingBackendServesEndToEnd) {
  auto service = SelectionService::Create(ServiceArtifacts(*embedded_a_),
                                          LightOptions());
  ASSERT_TRUE(service.ok()) << service.status().message();
  const SelectionResponse response =
      (*service)->Handle(EmbeddingRequest("mnli"));
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_EQ(response.recall_backend, "embedding");
  EXPECT_FALSE(response.selected_model.empty());
  // No proxy forward passes: the whole inference half of the ledger is
  // zero, fine selection's training epochs are the only cost.
  EXPECT_EQ(response.inference_epochs, 0.0);
  EXPECT_GT(response.training_epochs, 0.0);
  EXPECT_EQ(response.report.recall.proxies_computed, 0u);
}

TEST_F(EmbeddingServingTest, RoutingErrorsCarryTheRightCodes) {
  auto service =
      SelectionService::Create(ServiceArtifacts(*base_), LightOptions());
  ASSERT_TRUE(service.ok()) << service.status().message();

  SelectionRequest unknown;
  unknown.target = "mnli";
  unknown.recall_backend = "no-such-backend";
  EXPECT_TRUE((*service)->Handle(unknown).status.IsNotFound());

  // Registered name, but these artifacts never trained embeddings.
  for (const char* needs_embeddings : {"embedding", "hybrid"}) {
    SelectionRequest request;
    request.target = "mnli";
    request.recall_backend = needs_embeddings;
    const SelectionResponse response = (*service)->Handle(request);
    EXPECT_TRUE(response.status.IsFailedPrecondition()) << needs_embeddings;
    EXPECT_TRUE(response.selected_model.empty());
  }
}

TEST_F(EmbeddingServingTest, RepresentativeRoutingMatchesUnrouted) {
  auto service = SelectionService::Create(ServiceArtifacts(*embedded_a_),
                                          LightOptions());
  ASSERT_TRUE(service.ok()) << service.status().message();
  SelectionRequest unrouted;
  unrouted.target = "mnli";
  SelectionRequest routed = unrouted;
  routed.recall_backend = "representative";
  const SelectionResponse want = (*service)->Handle(unrouted);
  const SelectionResponse got = (*service)->Handle(routed);
  ASSERT_TRUE(want.status.ok());
  EXPECT_EQ(got.recall_backend, "representative");
  EXPECT_TRUE(want.recall_backend.empty());
  ExpectSameAnswer(got, want);
}

TEST_F(EmbeddingServingTest, ReloadIntroducesEmbeddingsToARunningService) {
  auto service =
      SelectionService::Create(ServiceArtifacts(*base_), LightOptions());
  ASSERT_TRUE(service.ok()) << service.status().message();
  EXPECT_TRUE((*service)
                  ->Handle(EmbeddingRequest("mnli"))
                  .status.IsFailedPrecondition());

  ASSERT_TRUE((*service)->Reload(ServiceArtifacts(*embedded_a_)).ok());

  const SelectionResponse response =
      (*service)->Handle(EmbeddingRequest("mnli"));
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_EQ(response.artifact_version, 2u);
  ExpectSameAnswer(response, oracle_a_->at("mnli"));
}

// Open-loop clients hammer the embedding backend while two Reloads land
// mid-flight (a -> b -> a). Every answer must match the oracle of the
// version it reports — embeddings from one version must never rank a
// request admitted against another.
TEST_F(EmbeddingServingTest, SwapBetweenEmbeddingVersionsNeverMixes) {
  ServiceOptions options;
  options.worker_threads = 4;
  auto service_or = SelectionService::Create(ServiceArtifacts(*embedded_a_),
                                             options);
  ASSERT_TRUE(service_or.ok()) << service_or.status().message();
  SelectionService& service = **service_or;

  std::vector<std::string> targets;
  for (const auto& [target, unused] : *oracle_a_) targets.push_back(target);
  ASSERT_FALSE(targets.empty());

  constexpr int kClients = 8;
  std::atomic<bool> stop{false};
  std::atomic<int> warmed{0};
  std::vector<std::vector<SelectionResponse>> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      size_t i = 0;
      while (true) {
        const std::string& target = targets[(c + i) % targets.size()];
        responses[c].push_back(
            service.Submit(EmbeddingRequest(target)).get());
        if (++i == 1) warmed.fetch_add(1);
        if (stop.load()) break;
      }
    });
  }

  // Both Reloads land while every client is mid-loop.
  while (warmed.load() < kClients) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(service.Reload(ServiceArtifacts(*embedded_b_)).ok());  // v2
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(service.Reload(ServiceArtifacts(*embedded_a_)).ok());  // v3
  stop.store(true);
  for (std::thread& client : clients) client.join();

  // Deterministic post-swap probe: the final version serves artifact a.
  const SelectionResponse probe =
      service.Handle(EmbeddingRequest(targets[0]));
  ASSERT_TRUE(probe.status.ok());
  EXPECT_EQ(probe.artifact_version, 3u);
  ExpectSameAnswer(probe, oracle_a_->at(targets[0]));

  size_t total = 0;
  std::set<uint64_t> versions_seen = {probe.artifact_version};
  for (int c = 0; c < kClients; ++c) {
    for (const SelectionResponse& response : responses[c]) {
      if (response.status.IsUnavailable()) continue;  // Backpressure.
      ++total;
      ASSERT_GE(response.artifact_version, 1u);
      ASSERT_LE(response.artifact_version, 3u);
      versions_seen.insert(response.artifact_version);
      EXPECT_EQ(response.recall_backend, "embedding");
      ExpectSameAnswer(response,
                       OracleFor(response.artifact_version)
                           .at(response.target));
    }
  }
  // Every client completed at least its warm-up answer and one more.
  EXPECT_GE(total, static_cast<size_t>(kClients) * 2);
  EXPECT_FALSE(versions_seen.empty());
  EXPECT_EQ(service.artifact_version(), 3u);
}

}  // namespace
}  // namespace serve
}  // namespace tps
