#include "index/ivf_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

namespace tps {
namespace {

// Deterministic synthetic inputs with a planted cluster geometry: `groups`
// well-separated centers, `per_group` models jittered around each, so the
// quantizer has real structure to find. SplitMix64-style mixing keeps the
// data a pure function of (groups, per_group, dims, seed).
double MixToUnit(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) / 9007199254740992.0;  // [0, 1).
}

struct TestInputs {
  std::vector<std::vector<double>> vectors;
  std::vector<double> prior;
};

TestInputs MakeInputs(size_t groups, size_t per_group, size_t dims,
                      uint64_t seed) {
  TestInputs inputs;
  uint64_t state = seed;
  for (size_t g = 0; g < groups; ++g) {
    std::vector<double> center(dims);
    for (double& c : center) c = 0.2 + 0.6 * MixToUnit(&state);
    for (size_t i = 0; i < per_group; ++i) {
      std::vector<double> v(dims);
      for (size_t d = 0; d < dims; ++d) {
        v[d] = center[d] + 0.01 * (MixToUnit(&state) - 0.5);
      }
      inputs.vectors.push_back(std::move(v));
      inputs.prior.push_back(0.5 + 0.4 * MixToUnit(&state));
    }
  }
  return inputs;
}

IvfIndex BuildOrDie(const TestInputs& inputs, const IvfIndexOptions& options) {
  auto index = IvfIndex::Build(inputs.vectors, inputs.prior, options);
  EXPECT_TRUE(index.ok()) << index.status().message();
  return *std::move(index);
}

TEST(IvfIndexTest, StructureInvariants) {
  const TestInputs inputs = MakeInputs(6, 10, 5, 1);
  const IvfIndex index = BuildOrDie(inputs, IvfIndexOptions());
  const IndexStructure& s = index.structure();

  ASSERT_EQ(s.num_models(), inputs.vectors.size());
  ASSERT_EQ(s.assignments.size(), inputs.vectors.size());
  ASSERT_EQ(s.members.size(), index.centroids().rows());

  // Every model in exactly its assigned partition; posting lists ascending.
  size_t total_members = 0;
  for (size_t p = 0; p < s.num_partitions(); ++p) {
    total_members += s.members[p].size();
    EXPECT_TRUE(std::is_sorted(s.members[p].begin(), s.members[p].end()));
    for (size_t m : s.members[p]) {
      EXPECT_EQ(static_cast<size_t>(s.assignments[m]), p);
    }
  }
  EXPECT_EQ(total_members, s.num_models());

  // Representative = highest-prior member, ties -> lowest model index.
  for (size_t p = 0; p < s.num_partitions(); ++p) {
    ASSERT_FALSE(s.members[p].empty());  // Build prunes empty cells.
    size_t expected = s.members[p][0];
    for (size_t m : s.members[p]) {
      if (s.prior[m] > s.prior[expected]) expected = m;
    }
    EXPECT_EQ(s.representatives[p], expected);
  }

  // Scored set: >= 2 members, ascending; slots and scored_models aligned.
  EXPECT_TRUE(std::is_sorted(s.scored_partitions.begin(),
                             s.scored_partitions.end()));
  for (size_t p = 0; p < s.num_partitions(); ++p) {
    const bool scored =
        std::binary_search(s.scored_partitions.begin(),
                           s.scored_partitions.end(), p);
    if (scored) {
      EXPECT_GE(s.members[p].size(), 2u);
      const size_t slot = s.slot_of_partition[p];
      ASSERT_LT(slot, s.scored_partitions.size());
      EXPECT_EQ(s.scored_partitions[slot], p);
      EXPECT_EQ(s.scored_models[slot], s.representatives[p]);
      EXPECT_TRUE(s.neighbors[p].empty());
    } else {
      EXPECT_EQ(s.slot_of_partition[p], IndexStructure::kNoSlot);
      EXPECT_FALSE(s.neighbors[p].empty());  // Propagation-only partitions
      EXPECT_TRUE(std::is_sorted(s.neighbors[p].begin(),  // read slots.
                                 s.neighbors[p].end()));
      EXPECT_LE(s.neighbors[p].size(), IvfIndexOptions().propagation_neighbors);
    }
  }

  // probe_priority and pilot_order: permutations of the scored set.
  const std::set<size_t> scored_set(s.scored_partitions.begin(),
                                    s.scored_partitions.end());
  EXPECT_EQ(std::set<size_t>(s.probe_priority.begin(), s.probe_priority.end()),
            scored_set);
  EXPECT_EQ(std::set<size_t>(s.pilot_order.begin(), s.pilot_order.end()),
            scored_set);
  for (size_t i = 1; i < s.probe_priority.size(); ++i) {
    EXPECT_GE(s.prior[s.representatives[s.probe_priority[i - 1]]],
              s.prior[s.representatives[s.probe_priority[i]]]);
  }
  // The pilot sweep starts from the top-priority partition.
  ASSERT_FALSE(s.pilot_order.empty());
  EXPECT_EQ(s.pilot_order[0], s.probe_priority[0]);
}

TEST(IvfIndexTest, AutoPartitionCountIsTwoSqrtN) {
  const TestInputs inputs = MakeInputs(10, 10, 4, 2);  // n = 100.
  const IvfIndex index = BuildOrDie(inputs, IvfIndexOptions());
  // 2 * ceil(sqrt(100)) = 20 cells requested; empty cells are pruned, so
  // the built count can only be lower.
  EXPECT_LE(index.centroids().rows(), 20u);
  EXPECT_GE(index.centroids().rows(), 1u);
  EXPECT_EQ(index.centroids().rows(), index.num_partitions());
}

TEST(IvfIndexTest, ExplicitPartitionCountRespected) {
  const TestInputs inputs = MakeInputs(4, 8, 4, 3);
  IvfIndexOptions options;
  options.num_partitions = 4;
  const IvfIndex index = BuildOrDie(inputs, options);
  EXPECT_LE(index.num_partitions(), 4u);
}

TEST(IvfIndexTest, DefaultNprobeRule) {
  const TestInputs inputs = MakeInputs(6, 8, 4, 4);
  {
    // Explicit value clamps to the scored count.
    IvfIndexOptions options;
    options.default_nprobe = 3;
    const IvfIndex index = BuildOrDie(inputs, options);
    EXPECT_EQ(index.default_nprobe(), 3u);
    options.default_nprobe = 100000;
    const IvfIndex clamped = BuildOrDie(inputs, options);
    EXPECT_EQ(clamped.default_nprobe(),
              clamped.structure().scored_partitions.size());
  }
  {
    // Auto rule: max(24, scored / 8), clamped to scored — small indexes
    // probe everything.
    const IvfIndex index = BuildOrDie(inputs, IvfIndexOptions());
    const size_t scored = index.structure().scored_partitions.size();
    EXPECT_EQ(index.default_nprobe(),
              std::min<size_t>(std::max<size_t>(24, scored / 8), scored));
  }
}

TEST(IvfIndexTest, ProbePartitionsBoundsAndOrder) {
  const TestInputs inputs = MakeInputs(8, 10, 5, 5);
  IvfIndexOptions options;
  options.num_partitions = 8;
  const IvfIndex index = BuildOrDie(inputs, options);
  const IndexStructure& s = index.structure();
  const size_t scored = s.scored_partitions.size();
  ASSERT_GE(scored, 2u);

  for (size_t nprobe : {size_t{1}, size_t{2}, scored - 1}) {
    const std::vector<size_t> probed = index.ProbePartitions(nprobe);
    EXPECT_EQ(probed.size(), nprobe);
    EXPECT_TRUE(std::is_sorted(probed.begin(), probed.end()));
    for (size_t p : probed) {
      EXPECT_NE(s.slot_of_partition[p], IndexStructure::kNoSlot);
    }
  }
  // nprobe = 0 resolves to the default; >= scored probes exactly the
  // scored set, whatever the target.
  EXPECT_EQ(index.ProbePartitions(0).size(), index.default_nprobe());
  EXPECT_EQ(index.ProbePartitions(scored), s.scored_partitions);
  EXPECT_EQ(index.ProbePartitions(scored + 100), s.scored_partitions);
  EXPECT_EQ(index.ProbePartitions(scored, /*target_dim=*/0),
            s.scored_partitions);
}

TEST(IvfIndexTest, TargetDimRoutingRanksByPriorTimesColumn) {
  const TestInputs inputs = MakeInputs(8, 10, 5, 6);
  IvfIndexOptions options;
  options.num_partitions = 8;
  const IvfIndex index = BuildOrDie(inputs, options);
  const IndexStructure& s = index.structure();
  ASSERT_GE(s.scored_partitions.size(), 2u);

  for (size_t dim = 0; dim < 5; ++dim) {
    // Independent recomputation of the routing rule's argmax.
    size_t best = s.scored_partitions[0];
    auto value = [&](size_t p) {
      const size_t rep = s.representatives[p];
      return s.prior[rep] * s.vectors[rep][dim];
    };
    for (size_t p : s.scored_partitions) {
      if (value(p) > value(best)) best = p;
    }
    const std::vector<size_t> probed = index.ProbePartitions(1, dim);
    ASSERT_EQ(probed.size(), 1u);
    EXPECT_EQ(probed[0], best) << "dim " << dim;
  }
  // An out-of-range dim falls back to the static priority.
  EXPECT_EQ(index.ProbePartitions(1, 99), index.ProbePartitions(1));
}

TEST(IvfIndexTest, PilotPartitionsSlicesPilotOrder) {
  const TestInputs inputs = MakeInputs(8, 10, 5, 7);
  const IvfIndex index = BuildOrDie(inputs, IvfIndexOptions());
  const IndexStructure& s = index.structure();
  const size_t scored = s.scored_partitions.size();
  ASSERT_GE(scored, 3u);

  for (size_t count : {size_t{1}, size_t{2}, scored, scored + 5}) {
    const std::vector<size_t> pilots = PilotPartitions(s, count);
    EXPECT_EQ(pilots.size(), std::min(count, scored));
    EXPECT_TRUE(std::is_sorted(pilots.begin(), pilots.end()));
    // Exactly the first `count` entries of pilot_order.
    std::vector<size_t> expected(
        s.pilot_order.begin(),
        s.pilot_order.begin() +
            static_cast<long>(std::min(count, scored)));
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(pilots, expected);
  }
}

TEST(IvfIndexTest, RouteByPilotScoresPicksNonPilots) {
  const TestInputs inputs = MakeInputs(8, 10, 5, 8);
  const IvfIndex index = BuildOrDie(inputs, IvfIndexOptions());
  const IndexStructure& s = index.structure();
  const size_t scored = s.scored_partitions.size();
  ASSERT_GE(scored, 4u);

  const std::vector<size_t> pilots = PilotPartitions(s, 2);
  std::vector<double> scores;
  for (size_t i = 0; i < pilots.size(); ++i) {
    scores.push_back(i == 0 ? 1.0 : 0.25);
  }
  const std::vector<size_t> routed = RouteByPilotScores(s, pilots, scores, 2);
  EXPECT_EQ(routed.size(), 2u);
  EXPECT_TRUE(std::is_sorted(routed.begin(), routed.end()));
  for (size_t p : routed) {
    EXPECT_NE(s.slot_of_partition[p], IndexStructure::kNoSlot);
    EXPECT_TRUE(std::find(pilots.begin(), pilots.end(), p) == pilots.end());
  }
  // Deterministic: same inputs, same picks.
  EXPECT_EQ(routed, RouteByPilotScores(s, pilots, scores, 2));
  // Budget beyond the non-pilot count returns every non-pilot.
  EXPECT_EQ(RouteByPilotScores(s, pilots, scores, scored + 10).size(),
            scored - pilots.size());
}

TEST(IvfIndexTest, SerializeRoundTripsBitForBit) {
  const TestInputs inputs = MakeInputs(6, 8, 4, 9);
  IvfIndexOptions options;
  options.default_nprobe = 5;
  options.propagation_neighbors = 3;
  const IvfIndex index = BuildOrDie(inputs, options);

  auto restored = IvfIndex::Deserialize(index.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  // The codec serializes the primaries and refinalizes the layout, so a
  // round trip reproduces the serialized form exactly...
  EXPECT_EQ(restored->Serialize(), index.Serialize());
  // ...and the restored index probes identically.
  EXPECT_EQ(restored->default_nprobe(), index.default_nprobe());
  EXPECT_EQ(restored->ProbePartitions(0), index.ProbePartitions(0));
  EXPECT_EQ(restored->ProbePartitions(3, 1), index.ProbePartitions(3, 1));
  EXPECT_EQ(restored->structure().pilot_order,
            index.structure().pilot_order);
}

TEST(IvfIndexTest, SaveLoadFileRoundTrip) {
  const TestInputs inputs = MakeInputs(5, 6, 4, 10);
  const IvfIndex index = BuildOrDie(inputs, IvfIndexOptions());
  const std::string path = testing::TempDir() + "/ivf_index_test.idx";
  ASSERT_TRUE(index.SaveToFile(path).ok());
  auto loaded = IvfIndex::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->Serialize(), index.Serialize());

  auto missing = IvfIndex::LoadFromFile(testing::TempDir() + "/absent.idx");
  EXPECT_FALSE(missing.ok());
}

TEST(IvfIndexTest, DeserializeRejectsCorruptInput) {
  const TestInputs inputs = MakeInputs(4, 6, 4, 11);
  const IvfIndex index = BuildOrDie(inputs, IvfIndexOptions());
  const std::string good = index.Serialize();

  EXPECT_FALSE(IvfIndex::Deserialize("not an index\n1 2 3\n").ok());
  EXPECT_FALSE(IvfIndex::Deserialize("tps-ivf-index v1\n0 0 0\n").ok());
  // Truncation anywhere in the payload is caught.
  EXPECT_FALSE(
      IvfIndex::Deserialize(good.substr(0, good.size() / 2)).ok());
  EXPECT_FALSE(IvfIndex::Deserialize(good.substr(0, 40)).ok());
}

TEST(IvfIndexTest, BuildRejectsInvalidInputs) {
  const TestInputs inputs = MakeInputs(3, 5, 4, 12);
  EXPECT_FALSE(IvfIndex::Build({}, {}, IvfIndexOptions()).ok());

  auto ragged = inputs;
  ragged.vectors[2].pop_back();
  EXPECT_FALSE(
      IvfIndex::Build(ragged.vectors, ragged.prior, IvfIndexOptions()).ok());

  auto short_prior = inputs;
  short_prior.prior.pop_back();
  EXPECT_FALSE(IvfIndex::Build(short_prior.vectors, short_prior.prior,
                               IvfIndexOptions())
                   .ok());

  IvfIndexOptions too_many;
  too_many.num_partitions = static_cast<int>(inputs.vectors.size()) + 1;
  EXPECT_FALSE(IvfIndex::Build(inputs.vectors, inputs.prior, too_many).ok());

  IvfIndexOptions bad_top_k;
  bad_top_k.similarity_top_k = 0;
  EXPECT_FALSE(IvfIndex::Build(inputs.vectors, inputs.prior, bad_top_k).ok());

  IvfIndexOptions bad_kmeans;
  bad_kmeans.kmeans_iterations = 0;
  EXPECT_FALSE(
      IvfIndex::Build(inputs.vectors, inputs.prior, bad_kmeans).ok());
}

TEST(IvfIndexTest, InsertGrowsExactlyOnePartition) {
  const TestInputs inputs = MakeInputs(5, 8, 4, 13);
  IvfIndex index = BuildOrDie(inputs, IvfIndexOptions());
  const size_t n = index.num_models();
  const std::vector<std::vector<size_t>> before = index.structure().members;

  // Insert a near-duplicate of model 0: it must land in model 0's
  // partition (nearest centroid) and every other posting list must keep
  // its members.
  std::vector<double> vector = inputs.vectors[0];
  vector[0] += 1e-6;
  ASSERT_TRUE(index.Insert(vector, 0.9).ok());
  const IndexStructure& s = index.structure();
  EXPECT_EQ(s.num_models(), n + 1);
  EXPECT_EQ(s.assignments.back(), s.assignments[0]);
  size_t grown = 0;
  for (size_t p = 0; p < s.num_partitions(); ++p) {
    std::vector<size_t> old_members = s.members[p];
    old_members.erase(std::remove(old_members.begin(), old_members.end(), n),
                      old_members.end());
    EXPECT_EQ(old_members, before[p]);
    if (s.members[p].size() != before[p].size()) ++grown;
  }
  EXPECT_EQ(grown, 1u);

  // Dimensionality mismatch is rejected without touching the index.
  EXPECT_FALSE(index.Insert({0.5, 0.5}, 0.5).ok());
  EXPECT_EQ(index.num_models(), n + 1);
}

}  // namespace
}  // namespace tps
