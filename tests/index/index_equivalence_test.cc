#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/coarse_recall.h"
#include "core/model_clusterer.h"
#include "core/performance_matrix.h"
#include "data/registry.h"
#include "index/ivf_index.h"
#include "index/recall_index.h"
#include "model/zoo.h"
#include "model/zoo_gen.h"
#include "sim/epoch_budget.h"
#include "sim/finetune_simulator.h"
#include "util/thread_pool.h"

namespace tps {
namespace {

// The equivalence theorems pinned here (DESIGN.md "Sub-linear recall
// index"):
//  A. An IvfIndex built with exact propagation (propagation_neighbors = 0)
//     and probed in full reproduces the legacy clustering sweep over its
//     own partitioning bit for bit — scores, recalled set, tie order and
//     the epoch ledger.
//  B. A BruteForceRecallIndex lifted from a real ModelClustering
//     reproduces the legacy CoarseRecall over that clustering bit for bit.
//  C. Incremental Insert against a frozen quantizer equals the
//     from-scratch BuildWithCentroids rebuild over the grown inputs.
// Each theorem is fuzzed over zoo sizes and seeds and run serial and on a
// pool (the parallel label routes this file through the TSan sweep).

struct World {
  std::unique_ptr<ModelZoo> zoo;
  std::unique_ptr<DatasetRegistry> registry;
  std::unique_ptr<FineTuneSimulator> simulator;
  std::unique_ptr<PerformanceMatrix> matrix;
  const Dataset* target = nullptr;
};

World MakeWorld(size_t num_models, uint64_t seed) {
  World world;
  ZooGenSpec spec;
  spec.domain = TaskDomain::kNLP;
  spec.num_models = num_models;
  spec.seed = seed;
  auto specs = GenerateZooSpecs(spec);
  EXPECT_TRUE(specs.ok()) << specs.status().message();
  auto zoo = ModelZoo::Create(*specs);
  EXPECT_TRUE(zoo.ok()) << zoo.status().message();
  world.zoo = std::make_unique<ModelZoo>(*std::move(zoo));
  world.registry = std::make_unique<DatasetRegistry>(
      *DatasetRegistry::CreatePaperInventory());
  world.simulator = std::make_unique<FineTuneSimulator>();
  auto matrix = PerformanceMatrix::Build(
      *world.zoo, world.registry->Benchmarks(TaskDomain::kNLP),
      *world.simulator, Hyperparams::DefaultsFor(TaskDomain::kNLP));
  EXPECT_TRUE(matrix.ok()) << matrix.status().message();
  world.matrix = std::make_unique<PerformanceMatrix>(*std::move(matrix));
  world.target = *world.registry->Find("mnli");
  return world;
}

// Bit-for-bit: EXPECT_EQ on doubles is exact equality, which is the
// contract — the indexed path must run the same arithmetic in the same
// order, not merely land close.
void ExpectIdentical(const RecallResult& a, const RecallResult& b) {
  EXPECT_EQ(a.proxies_computed, b.proxies_computed);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].model_index, b.ranked[i].model_index) << i;
    EXPECT_EQ(a.ranked[i].recall_score, b.ranked[i].recall_score) << i;
    EXPECT_EQ(a.ranked[i].prior_accuracy, b.ranked[i].prior_accuracy) << i;
    EXPECT_EQ(a.ranked[i].proxy_component, b.ranked[i].proxy_component) << i;
    EXPECT_EQ(a.ranked[i].via_propagation, b.ranked[i].via_propagation) << i;
  }
}

TEST(IndexEquivalenceTest, FullProbeIvfEqualsLegacySweep) {
  for (const auto& [num_models, seed] :
       std::vector<std::pair<size_t, uint64_t>>{{60, 3}, {150, 11}}) {
    SCOPED_TRACE("zoo " + std::to_string(num_models) + " seed " +
                 std::to_string(seed));
    const World world = MakeWorld(num_models, seed);

    IvfIndexOptions options;
    options.propagation_neighbors = 0;  // Exact propagation.
    auto index = IvfIndex::Build(world.matrix->ModelVectors(),
                                 world.matrix->ModelAverageAccuracies(),
                                 options);
    ASSERT_TRUE(index.ok()) << index.status().message();
    auto clustering = ClusteringFromIndexStructure(index->structure());
    ASSERT_TRUE(clustering.ok()) << clustering.status().message();
    CoarseRecall recall(world.zoo.get(), world.matrix.get(),
                        &*clustering);

    RecallOptions legacy_options;
    EpochBudget legacy_budget;
    auto legacy =
        recall.Recall(*world.target, legacy_options, &legacy_budget);
    ASSERT_TRUE(legacy.ok()) << legacy.status().message();

    RecallOptions indexed_options;
    indexed_options.index = &*index;
    indexed_options.nprobe = index->num_partitions();  // Full probe.
    EpochBudget indexed_budget;
    auto indexed =
        recall.Recall(*world.target, indexed_options, &indexed_budget);
    ASSERT_TRUE(indexed.ok()) << indexed.status().message();

    ExpectIdentical(*legacy, *indexed);
    EXPECT_EQ(indexed_budget.inference_epochs(),
              legacy_budget.inference_epochs());
    EXPECT_EQ(indexed_budget.training_epochs(),
              legacy_budget.training_epochs());

    // Same theorem on a pool: the fan-out must not perturb a single bit.
    ThreadPool pool(4);
    auto pooled =
        recall.Recall(*world.target, indexed_options, nullptr, &pool);
    ASSERT_TRUE(pooled.ok()) << pooled.status().message();
    ExpectIdentical(*legacy, *pooled);
  }
}

TEST(IndexEquivalenceTest, BruteForceFromClusteringEqualsLegacySweep) {
  for (uint64_t seed : {5u, 23u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const World world = MakeWorld(80, seed);
    auto clustering = ClusterModels(*world.matrix, *world.zoo,
                                    ModelClusteringOptions());
    ASSERT_TRUE(clustering.ok()) << clustering.status().message();
    auto index = IndexFromClustering(*world.matrix, *clustering);
    ASSERT_TRUE(index.ok()) << index.status().message();
    CoarseRecall recall(world.zoo.get(), world.matrix.get(), &*clustering);

    EpochBudget legacy_budget;
    auto legacy =
        recall.Recall(*world.target, RecallOptions(), &legacy_budget);
    ASSERT_TRUE(legacy.ok()) << legacy.status().message();

    RecallOptions indexed_options;
    indexed_options.index = &*index;
    EpochBudget indexed_budget;
    auto indexed =
        recall.Recall(*world.target, indexed_options, &indexed_budget);
    ASSERT_TRUE(indexed.ok()) << indexed.status().message();

    ExpectIdentical(*legacy, *indexed);
    EXPECT_EQ(indexed_budget.inference_epochs(),
              legacy_budget.inference_epochs());

    ThreadPool pool(3);
    auto pooled =
        recall.Recall(*world.target, indexed_options, nullptr, &pool);
    ASSERT_TRUE(pooled.ok()) << pooled.status().message();
    ExpectIdentical(*legacy, *pooled);
  }
}

TEST(IndexEquivalenceTest, InsertEqualsRebuildWithFrozenQuantizer) {
  for (const auto& [num_models, seed] :
       std::vector<std::pair<size_t, uint64_t>>{{60, 7}, {120, 31}}) {
    SCOPED_TRACE("zoo " + std::to_string(num_models) + " seed " +
                 std::to_string(seed));
    const World world = MakeWorld(num_models, seed);
    const std::vector<std::vector<double>> vectors =
        world.matrix->ModelVectors();
    const std::vector<double> prior =
        world.matrix->ModelAverageAccuracies();
    const size_t held_out = 5;
    const size_t base_count = vectors.size() - held_out;

    IvfIndexOptions options;
    options.propagation_neighbors = 4;
    std::vector<std::vector<double>> base_vectors(
        vectors.begin(), vectors.begin() + static_cast<long>(base_count));
    std::vector<double> base_prior(
        prior.begin(), prior.begin() + static_cast<long>(base_count));
    auto grown = IvfIndex::Build(base_vectors, base_prior, options);
    ASSERT_TRUE(grown.ok()) << grown.status().message();

    for (size_t m = base_count; m < vectors.size(); ++m) {
      ASSERT_TRUE(grown->Insert(vectors[m], prior[m]).ok());
    }
    auto rebuilt = IvfIndex::BuildWithCentroids(grown->centroids(), vectors,
                                                prior, options);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().message();

    // Serialize covers every primary field (options, priors, assignments,
    // centroids, vectors); the derived fields are compared directly.
    EXPECT_EQ(grown->Serialize(), rebuilt->Serialize());
    const IndexStructure& a = grown->structure();
    const IndexStructure& b = rebuilt->structure();
    EXPECT_EQ(a.members, b.members);
    EXPECT_EQ(a.representatives, b.representatives);
    EXPECT_EQ(a.scored_partitions, b.scored_partitions);
    EXPECT_EQ(a.slot_of_partition, b.slot_of_partition);
    EXPECT_EQ(a.neighbors, b.neighbors);
    EXPECT_EQ(a.probe_priority, b.probe_priority);
    EXPECT_EQ(a.pilot_order, b.pilot_order);
  }
}

TEST(IndexEquivalenceTest, PartialProbeChargesExactlyNprobe) {
  const World world = MakeWorld(120, 13);
  auto index = IvfIndex::Build(world.matrix->ModelVectors(),
                               world.matrix->ModelAverageAccuracies(),
                               IvfIndexOptions());
  ASSERT_TRUE(index.ok()) << index.status().message();
  auto clustering = ClusteringFromIndexStructure(index->structure());
  ASSERT_TRUE(clustering.ok()) << clustering.status().message();
  CoarseRecall recall(world.zoo.get(), world.matrix.get(), &*clustering);
  const size_t scored = index->structure().scored_partitions.size();
  ASSERT_GE(scored, 6u);

  const size_t nprobe = scored / 2;
  RecallOptions options;
  options.index = &*index;
  options.nprobe = nprobe;
  EpochBudget budget;
  auto result = recall.Recall(*world.target, options, &budget);
  ASSERT_TRUE(result.ok()) << result.status().message();
  // The adaptive pilot-and-route probe splits the budget into two waves
  // but never exceeds it: exactly nprobe representatives are scored and
  // charged.
  EXPECT_EQ(result->proxies_computed, nprobe);
  EXPECT_EQ(budget.inference_epochs(), 0.5 * static_cast<double>(nprobe));
  for (size_t i = 1; i < result->ranked.size(); ++i) {
    EXPECT_GE(result->ranked[i - 1].recall_score,
              result->ranked[i].recall_score);
  }

  // The two-wave schedule is deterministic: serial and pooled runs agree
  // bit for bit.
  ThreadPool pool(4);
  auto pooled = recall.Recall(*world.target, options, nullptr, &pool);
  ASSERT_TRUE(pooled.ok()) << pooled.status().message();
  ExpectIdentical(*result, *pooled);
}

}  // namespace
}  // namespace tps
