#include "store/record_log.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace tps {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(RecordLogTest, WriteThenReadBack) {
  const std::string path = TempPath("log_roundtrip.log");
  {
    auto writer = std::move(RecordLogWriter::Open(path)).value();
    ASSERT_TRUE(writer.Append("first").ok());
    ASSERT_TRUE(writer.Append("second record").ok());
    ASSERT_TRUE(writer.Append("").ok());  // Empty payloads are legal.
  }
  auto contents = ReadRecordLog(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents->truncated_tail);
  ASSERT_EQ(contents->records.size(), 3u);
  EXPECT_EQ(contents->records[0], "first");
  EXPECT_EQ(contents->records[1], "second record");
  EXPECT_EQ(contents->records[2], "");
}

TEST(RecordLogTest, BinaryPayloadsSurvive) {
  const std::string path = TempPath("log_binary.log");
  std::string payload = "a";
  payload.push_back('\0');
  payload += "b\n\tc";
  payload.push_back('\xFF');
  {
    auto writer = std::move(RecordLogWriter::Open(path)).value();
    ASSERT_TRUE(writer.Append(payload).ok());
  }
  auto contents = *ReadRecordLog(path);
  ASSERT_EQ(contents.records.size(), 1u);
  EXPECT_EQ(contents.records[0], payload);
}

TEST(RecordLogTest, AppendAcrossReopens) {
  const std::string path = TempPath("log_reopen.log");
  {
    auto writer = std::move(RecordLogWriter::Open(path)).value();
    ASSERT_TRUE(writer.Append("one").ok());
  }
  {
    auto writer = std::move(RecordLogWriter::Open(path)).value();
    ASSERT_TRUE(writer.Append("two").ok());
  }
  auto contents = *ReadRecordLog(path);
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_EQ(contents.records[1], "two");
}

TEST(RecordLogTest, TornTailIsDetectedAndPrefixRecovered) {
  const std::string path = TempPath("log_torn.log");
  {
    auto writer = std::move(RecordLogWriter::Open(path)).value();
    ASSERT_TRUE(writer.Append("intact record").ok());
    ASSERT_TRUE(writer.Append("this one will be torn").ok());
  }
  // Chop a few bytes off the end (simulating a crash mid-write).
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() - 5);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  out.close();

  auto contents = *ReadRecordLog(path);
  EXPECT_TRUE(contents.truncated_tail);
  ASSERT_EQ(contents.records.size(), 1u);
  EXPECT_EQ(contents.records[0], "intact record");
}

TEST(RecordLogTest, BitRotIsDetected) {
  const std::string path = TempPath("log_bitrot.log");
  {
    auto writer = std::move(RecordLogWriter::Open(path)).value();
    ASSERT_TRUE(writer.Append("good").ok());
    ASSERT_TRUE(writer.Append("will be corrupted").ok());
  }
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  // Flip a byte inside the second record's payload (after the first
  // record: 8 header + 4 payload, plus the second header of 8).
  file.seekp(8 + 4 + 8 + 3);
  file.put('X');
  file.close();

  auto contents = *ReadRecordLog(path);
  EXPECT_TRUE(contents.truncated_tail);
  ASSERT_EQ(contents.records.size(), 1u);
  EXPECT_EQ(contents.records[0], "good");
}

TEST(RecordLogTest, ReportsValidPrefixBytes) {
  const std::string path = TempPath("log_prefix_bytes.log");
  {
    auto writer = std::move(RecordLogWriter::Open(path)).value();
    ASSERT_TRUE(writer.Append("abcd").ok());   // 8 + 4 bytes.
    ASSERT_TRUE(writer.Append("efghij").ok());  // 8 + 6 bytes.
  }
  auto clean = *ReadRecordLog(path);
  EXPECT_EQ(clean.valid_prefix_bytes, 26u);

  // Chop into the second record: the valid prefix ends after the first.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(20);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  out.close();

  auto torn = *ReadRecordLog(path);
  EXPECT_TRUE(torn.truncated_tail);
  EXPECT_EQ(torn.valid_prefix_bytes, 12u);
  ASSERT_EQ(torn.records.size(), 1u);
}

TEST(RecordLogTest, OverrunningLengthIsTornTailNotAGiantAllocation) {
  // A header declaring ~2 GiB with only a few bytes behind it must be
  // treated as a truncated tail without allocating the declared length.
  const std::string path = TempPath("log_overrun_length.log");
  {
    auto writer = std::move(RecordLogWriter::Open(path)).value();
    ASSERT_TRUE(writer.Append("good").ok());
  }
  std::ofstream out(path, std::ios::binary | std::ios::app);
  const char bogus_header[8] = {'\xDE', '\xAD', '\xBE', '\xEF',  // crc
                                '\x00', '\x00', '\xFF', '\x7F'};  // length
  out.write(bogus_header, sizeof(bogus_header));
  out << "tiny";
  out.close();

  auto contents = *ReadRecordLog(path);
  EXPECT_TRUE(contents.truncated_tail);
  EXPECT_EQ(contents.valid_prefix_bytes, 12u);
  ASSERT_EQ(contents.records.size(), 1u);
  EXPECT_EQ(contents.records[0], "good");
}

TEST(RecordLogTest, CreateTruncatesAnExistingLog) {
  const std::string path = TempPath("log_create.log");
  {
    auto writer = std::move(RecordLogWriter::Open(path)).value();
    ASSERT_TRUE(writer.Append("stale").ok());
  }
  {
    auto writer = std::move(RecordLogWriter::Create(path)).value();
    ASSERT_TRUE(writer.Append("fresh").ok());
  }
  auto contents = *ReadRecordLog(path);
  ASSERT_EQ(contents.records.size(), 1u);
  EXPECT_EQ(contents.records[0], "fresh");
}

TEST(RecordLogTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadRecordLog("/no/such/log").status().IsIOError());
}

TEST(RecordLogTest, EmptyFileYieldsNoRecords) {
  const std::string path = TempPath("log_empty.log");
  { std::ofstream create(path, std::ios::binary); }
  auto contents = *ReadRecordLog(path);
  EXPECT_TRUE(contents.records.empty());
  EXPECT_FALSE(contents.truncated_tail);
}

}  // namespace
}  // namespace tps
