// Property / fuzz round-trip suite for the store's spec serialization and
// the selection-trace JSON codec. Two invariants:
//
//  1. Round-trip: any spec/trace that serializes successfully must
//     deserialize back to an equal value (doubles bit-exact).
//  2. No crash: arbitrary malformed, mutated or truncated input must come
//     back as a Status error or a benign success — never a crash, hang,
//     throw, or sanitizer report. Run this suite under the ASan/UBSan
//     store-label builds (see .claude/skills/verify/SKILL.md).
//
// Inputs are generated from a seeded deterministic Rng, including the edge
// cases named in the PR spec: empty strings, extreme-but-finite doubles
// (NaN has no serialized form in either codec and is excluded by
// construction), and maximum-length keys/tags.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/selection_trace.h"
#include "store/spec_serialization.h"
#include "util/json.h"
#include "util/rng.h"

namespace tps {
namespace {

constexpr int kRounds = 200;
constexpr size_t kMaxNameLength = 4096;

/// Finite doubles spanning the printable extremes.
double ExtremeDouble(Rng& rng) {
  switch (rng.UniformInt(uint64_t{8})) {
    case 0:
      return 0.0;
    case 1:
      return -0.0;
    case 2:
      return std::numeric_limits<double>::max();
    case 3:
      return -std::numeric_limits<double>::max();
    case 4:
      return std::numeric_limits<double>::min();
    case 5:
      return std::numeric_limits<double>::denorm_min();
    case 6:
      return rng.Uniform(-1e9, 1e9);
    default:
      return rng.Normal();
  }
}

/// Printable-byte string (no tabs/newlines, which the spec codec rejects by
/// contract); occasionally empty or maximum-length.
std::string RandomName(Rng& rng) {
  const uint64_t kind = rng.UniformInt(uint64_t{10});
  if (kind == 0) return "";
  const size_t length =
      kind == 1 ? kMaxNameLength : 1 + rng.UniformInt(uint64_t{40});
  std::string s;
  s.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    s.push_back(static_cast<char>(' ' + rng.UniformInt(uint64_t{95})));
  }
  return s;
}

std::vector<std::string> RandomTags(Rng& rng) {
  std::vector<std::string> tags;
  const size_t count = rng.UniformInt(uint64_t{4});
  for (size_t i = 0; i < count; ++i) {
    // Tags are tab-joined on one line, so an empty tag would not survive;
    // keep them non-empty (the registry never produces empty tags either).
    std::string tag = RandomName(rng);
    if (tag.empty()) tag = "t";
    tags.push_back(tag);
  }
  return tags;
}

ModelSpec RandomModelSpec(Rng& rng) {
  ModelSpec spec;
  spec.name = RandomName(rng);
  spec.domain = rng.Bernoulli(0.5) ? TaskDomain::kNLP : TaskDomain::kCV;
  spec.family = RandomName(rng);
  spec.scale_millions = ExtremeDouble(rng);
  spec.capability = ExtremeDouble(rng);
  spec.pretrain_tags = RandomTags(rng);
  spec.finetune_tags = RandomTags(rng);
  spec.finetune_strength = ExtremeDouble(rng);
  spec.num_source_labels = static_cast<int>(rng.UniformInt(int64_t{-4}, 1000));
  spec.description = RandomName(rng);
  return spec;
}

DatasetSpec RandomDatasetSpec(Rng& rng) {
  DatasetSpec spec;
  spec.name = RandomName(rng);
  spec.domain = rng.Bernoulli(0.5) ? TaskDomain::kNLP : TaskDomain::kCV;
  spec.role =
      rng.Bernoulli(0.5) ? DatasetRole::kBenchmark : DatasetRole::kTarget;
  spec.num_labels = static_cast<int>(rng.UniformInt(int64_t{-3}, 500));
  spec.difficulty = ExtremeDouble(rng);
  spec.tags = RandomTags(rng);
  spec.num_examples = static_cast<int>(rng.UniformInt(int64_t{-1}, 4096));
  spec.chance_accuracy = ExtremeDouble(rng);
  spec.ceiling_accuracy = ExtremeDouble(rng);
  return spec;
}

void ExpectModelSpecsEqual(const ModelSpec& a, const ModelSpec& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.domain, b.domain);
  EXPECT_EQ(a.family, b.family);
  EXPECT_EQ(a.scale_millions, b.scale_millions);
  EXPECT_EQ(a.capability, b.capability);
  EXPECT_EQ(a.pretrain_tags, b.pretrain_tags);
  EXPECT_EQ(a.finetune_tags, b.finetune_tags);
  EXPECT_EQ(a.finetune_strength, b.finetune_strength);
  EXPECT_EQ(a.num_source_labels, b.num_source_labels);
  EXPECT_EQ(a.description, b.description);
}

void ExpectDatasetSpecsEqual(const DatasetSpec& a, const DatasetSpec& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.domain, b.domain);
  EXPECT_EQ(a.role, b.role);
  EXPECT_EQ(a.num_labels, b.num_labels);
  EXPECT_EQ(a.difficulty, b.difficulty);
  EXPECT_EQ(a.tags, b.tags);
  EXPECT_EQ(a.num_examples, b.num_examples);
  EXPECT_EQ(a.chance_accuracy, b.chance_accuracy);
  EXPECT_EQ(a.ceiling_accuracy, b.ceiling_accuracy);
}

TEST(SpecSerializationFuzzTest, ModelSpecRoundTripsUnderRandomInputs) {
  Rng rng(0xF00D);
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const ModelSpec spec = RandomModelSpec(rng);
    auto text = SerializeModelSpec(spec);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    auto parsed = DeserializeModelSpec(*text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ExpectModelSpecsEqual(spec, *parsed);
  }
}

TEST(SpecSerializationFuzzTest, DatasetSpecRoundTripsUnderRandomInputs) {
  Rng rng(0xBEEF);
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const DatasetSpec spec = RandomDatasetSpec(rng);
    auto text = SerializeDatasetSpec(spec);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    auto parsed = DeserializeDatasetSpec(*text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ExpectDatasetSpecsEqual(spec, *parsed);
  }
}

TEST(SpecSerializationFuzzTest, RejectsFieldsWithTabsOrNewlines) {
  ModelSpec spec;
  spec.name = "bad\tname";
  EXPECT_FALSE(SerializeModelSpec(spec).ok());
  spec.name = "bad\nname";
  EXPECT_FALSE(SerializeModelSpec(spec).ok());
  DatasetSpec ds;
  ds.name = "ok";
  ds.tags = {"bad\ttag"};
  EXPECT_FALSE(SerializeDatasetSpec(ds).ok());
}

/// Random byte mutation: flip, insert or delete one byte.
std::string Mutate(std::string text, Rng& rng) {
  if (text.empty()) return text;
  const size_t pos = rng.UniformInt(text.size());
  switch (rng.UniformInt(uint64_t{3})) {
    case 0:
      text[pos] = static_cast<char>(rng.UniformInt(uint64_t{256}));
      break;
    case 1:
      text.insert(pos, 1, static_cast<char>(rng.UniformInt(uint64_t{256})));
      break;
    default:
      text.erase(pos, 1);
      break;
  }
  return text;
}

TEST(SpecSerializationFuzzTest, MutatedAndTruncatedInputNeverCrashes) {
  Rng rng(0xDEAD);
  const ModelSpec model = RandomModelSpec(rng);
  const DatasetSpec dataset = RandomDatasetSpec(rng);
  const std::string model_text = *SerializeModelSpec(model);
  const std::string dataset_text = *SerializeDatasetSpec(dataset);

  for (int round = 0; round < kRounds; ++round) {
    // Status error or benign success are both fine; crashing is not.
    (void)DeserializeModelSpec(Mutate(model_text, rng));
    (void)DeserializeDatasetSpec(Mutate(dataset_text, rng));
  }
  for (size_t cut = 0; cut <= model_text.size(); cut += 3) {
    (void)DeserializeModelSpec(model_text.substr(0, cut));
  }
  for (size_t cut = 0; cut <= dataset_text.size(); cut += 3) {
    (void)DeserializeDatasetSpec(dataset_text.substr(0, cut));
  }
  (void)DeserializeModelSpec("");
  (void)DeserializeDatasetSpec(std::string(3, '\0'));
}

SelectionTrace RandomTrace(Rng& rng) {
  SelectionTrace trace;
  trace.target = RandomName(rng);
  trace.domain = rng.Bernoulli(0.5) ? "NLP" : "CV";
  const size_t scored = rng.UniformInt(uint64_t{5});
  for (size_t i = 0; i < scored; ++i) {
    trace.recall.scored.push_back({rng.UniformInt(uint64_t{1000}),
                                   static_cast<int>(rng.UniformInt(uint64_t{32})),
                                   ExtremeDouble(rng)});
    trace.recall.ranked.push_back({rng.UniformInt(uint64_t{1000}),
                                   ExtremeDouble(rng), ExtremeDouble(rng),
                                   ExtremeDouble(rng), rng.Bernoulli(0.5)});
    trace.recall.recalled.push_back(rng.UniformInt(uint64_t{1000}));
  }
  trace.recall.proxies_computed = scored;
  trace.recall.inference_epochs = ExtremeDouble(rng);
  trace.recall.wall_ms = ExtremeDouble(rng);
  const size_t stages = rng.UniformInt(uint64_t{4});
  for (size_t s = 0; s < stages; ++s) {
    TraceStage stage;
    stage.stage = static_cast<int>(s);
    stage.entrants = {rng.UniformInt(uint64_t{1000})};
    stage.epochs_charged = ExtremeDouble(rng);
    if (rng.Bernoulli(0.5)) {
      stage.prunes.push_back({rng.UniformInt(uint64_t{1000}),
                              rng.UniformInt(uint64_t{1000}),
                              ExtremeDouble(rng), ExtremeDouble(rng),
                              ExtremeDouble(rng), ExtremeDouble(rng),
                              ExtremeDouble(rng)});
    }
    stage.halving_drops = {rng.UniformInt(uint64_t{1000})};
    stage.survivors = {rng.UniformInt(uint64_t{1000})};
    trace.stages.push_back(std::move(stage));
  }
  trace.fine_wall_ms = ExtremeDouble(rng);
  trace.selected_model = rng.UniformInt(uint64_t{1000});
  trace.selected_accuracy = ExtremeDouble(rng);
  trace.training_epochs = ExtremeDouble(rng);
  trace.total_epochs = ExtremeDouble(rng);
  return trace;
}

TEST(TraceJsonFuzzTest, RandomTracesRoundTripBitExactly) {
  Rng rng(0xCAFE);
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const SelectionTrace trace = RandomTrace(rng);
    for (int indent : {-1, 0, 2}) {
      auto parsed = SelectionTrace::FromJson(trace.ToJson(indent));
      ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
      EXPECT_EQ(*parsed, trace);
    }
  }
}

TEST(TraceJsonFuzzTest, MutatedAndTruncatedTraceJsonNeverCrashes) {
  Rng rng(0x5EED);
  const std::string text = RandomTrace(rng).ToJson(-1);
  for (int round = 0; round < 2 * kRounds; ++round) {
    (void)SelectionTrace::FromJson(Mutate(text, rng));
    (void)json::Parse(Mutate(text, rng));
  }
  for (size_t cut = 0; cut <= text.size(); cut += 5) {
    EXPECT_FALSE(SelectionTrace::FromJson(text.substr(0, cut)).ok());
  }
}

TEST(TraceJsonFuzzTest, RandomBytesNeverCrashTheJsonParser) {
  Rng rng(0xACED);
  for (int round = 0; round < 2 * kRounds; ++round) {
    std::string garbage;
    const size_t length = rng.UniformInt(uint64_t{256});
    garbage.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.UniformInt(uint64_t{256})));
    }
    (void)json::Parse(garbage);
    (void)SelectionTrace::FromJson(garbage);
  }
}

}  // namespace
}  // namespace tps
