#include "store/kv_store.h"

#include <cstdio>
#include <fstream>
#include <map>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tps {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(KvStoreTest, PutGetDelete) {
  auto store = std::move(KvStore::Open(TempPath("kv_basic.log"))).value();
  ASSERT_TRUE(store.Put("alpha", "1").ok());
  ASSERT_TRUE(store.Put("beta", "2").ok());
  EXPECT_EQ(*store.Get("alpha"), "1");
  EXPECT_EQ(*store.Get("beta"), "2");
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains("alpha"));

  ASSERT_TRUE(store.Delete("alpha").ok());
  EXPECT_FALSE(store.Contains("alpha"));
  EXPECT_TRUE(store.Get("alpha").status().IsNotFound());
  EXPECT_EQ(store.size(), 1u);
  // Deleting an absent key is a no-op.
  EXPECT_TRUE(store.Delete("alpha").ok());
}

TEST(KvStoreTest, OverwriteKeepsLatestValue) {
  auto store = std::move(KvStore::Open(TempPath("kv_overwrite.log"))).value();
  ASSERT_TRUE(store.Put("key", "v1").ok());
  ASSERT_TRUE(store.Put("key", "v2").ok());
  EXPECT_EQ(*store.Get("key"), "v2");
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, EmptyKeyRejected) {
  auto store = std::move(KvStore::Open(TempPath("kv_emptykey.log"))).value();
  EXPECT_TRUE(store.Put("", "v").IsInvalidArgument());
  EXPECT_TRUE(store.Delete("").IsInvalidArgument());
}

TEST(KvStoreTest, ValuesMayContainBinaryData) {
  auto store = std::move(KvStore::Open(TempPath("kv_binary.log"))).value();
  std::string value = "a";
  value.push_back('\0');
  value += "\n\tb";
  ASSERT_TRUE(store.Put("bin", value).ok());
  EXPECT_EQ(*store.Get("bin"), value);
}

TEST(KvStoreTest, PersistsAcrossReopen) {
  const std::string path = TempPath("kv_reopen.log");
  {
    auto store = std::move(KvStore::Open(path)).value();
    ASSERT_TRUE(store.Put("a", "1").ok());
    ASSERT_TRUE(store.Put("b", "2").ok());
    ASSERT_TRUE(store.Delete("a").ok());
    ASSERT_TRUE(store.Put("c", "3").ok());
  }
  auto store = std::move(KvStore::Open(path)).value();
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Get("a").status().IsNotFound());
  EXPECT_EQ(*store.Get("b"), "2");
  EXPECT_EQ(*store.Get("c"), "3");
}

TEST(KvStoreTest, ScanPrefixIsSortedAndBounded) {
  auto store = std::move(KvStore::Open(TempPath("kv_scan.log"))).value();
  for (const char* key : {"model/b", "model/a", "dataset/x", "model/c",
                          "modelz"}) {
    ASSERT_TRUE(store.Put(key, "v").ok());
  }
  EXPECT_EQ(store.ScanPrefix("model/"),
            (std::vector<std::string>{"model/a", "model/b", "model/c"}));
  EXPECT_EQ(store.ScanPrefix("nothing/").size(), 0u);
  EXPECT_EQ(store.ScanPrefix("").size(), 5u);  // Empty prefix = everything.
}

TEST(KvStoreTest, CompactionShrinksLogAndPreservesContents) {
  const std::string path = TempPath("kv_compact.log");
  auto store = std::move(KvStore::Open(path)).value();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.Put("churn", std::string("v") + std::to_string(i)).ok());
  }
  ASSERT_TRUE(store.Put("keep", "forever").ok());
  ASSERT_TRUE(store.Delete("churn").ok());
  EXPECT_GT(store.log_records(), 50u);

  ASSERT_TRUE(store.Compact().ok());
  EXPECT_EQ(store.log_records(), 1u);  // Only the live key remains.
  EXPECT_EQ(*store.Get("keep"), "forever");

  // The compacted log replays correctly.
  auto reopened = std::move(KvStore::Open(path)).value();
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(*reopened.Get("keep"), "forever");
}

TEST(KvStoreTest, WritesAfterCompactionSurviveReopen) {
  const std::string path = TempPath("kv_compact_append.log");
  {
    auto store = std::move(KvStore::Open(path)).value();
    ASSERT_TRUE(store.Put("a", "1").ok());
    ASSERT_TRUE(store.Compact().ok());
    ASSERT_TRUE(store.Put("b", "2").ok());
  }
  auto store = std::move(KvStore::Open(path)).value();
  EXPECT_EQ(*store.Get("a"), "1");
  EXPECT_EQ(*store.Get("b"), "2");
}

TEST(KvStoreTest, TornTailIsTruncatedSoPostRecoveryWritesSurvive) {
  // Regression test for the torn-tail data-loss bug: Open used to reopen
  // the log for append WITHOUT truncating a detected torn tail, so every
  // post-recovery append sat behind corrupt bytes and was silently
  // discarded by the next replay.
  const std::string path = TempPath("kv_torn_tail.log");
  {
    auto store = std::move(KvStore::Open(path)).value();
    ASSERT_TRUE(store.Put("survivor", "intact").ok());
    ASSERT_TRUE(store.Put("victim", "will be torn").ok());
  }
  // Chop a few bytes off the end (crash mid-append of the second record).
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() - 3);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  out.close();

  {
    auto store = std::move(KvStore::Open(path)).value();
    EXPECT_TRUE(store.recovery_stats().tail_was_torn);
    // The whole torn record (8 header + 5 op/keylen + 6 key + 12 value)
    // minus the 3 chopped bytes.
    EXPECT_EQ(store.recovery_stats().bytes_truncated, 8u + 23u - 3u);
    EXPECT_EQ(store.recovery_stats().records_replayed, 1u);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_FALSE(store.Contains("victim"));
    ASSERT_TRUE(store.Put("after-crash", "must survive").ok());
  }
  auto store = std::move(KvStore::Open(path)).value();
  EXPECT_FALSE(store.recovery_stats().tail_was_torn);
  EXPECT_EQ(*store.Get("survivor"), "intact");
  EXPECT_EQ(*store.Get("after-crash"), "must survive");
  EXPECT_EQ(store.size(), 2u);
}

TEST(KvStoreTest, RandomOpsMatchReferenceModel) {
  // Property test: a random Put/Delete/Compact/Reopen workload agrees with
  // std::map at every step.
  const std::string path = TempPath("kv_model_check.log");
  auto store_or = KvStore::Open(path);
  ASSERT_TRUE(store_or.ok());
  KvStore store = std::move(store_or).value();
  std::map<std::string, std::string> reference;
  Rng rng(2026);

  for (int op = 0; op < 2000; ++op) {
    const std::string key =
        std::string("k") + std::to_string(rng.UniformInt(uint64_t{40}));
    const double dice = rng.Uniform();
    if (dice < 0.55) {
      const std::string value = std::string("v") + std::to_string(op);
      ASSERT_TRUE(store.Put(key, value).ok());
      reference[key] = value;
    } else if (dice < 0.85) {
      ASSERT_TRUE(store.Delete(key).ok());
      reference.erase(key);
    } else if (dice < 0.95) {
      ASSERT_TRUE(store.Compact().ok());
    } else {
      // Reopen from disk (crash-free restart).
      auto reopened = KvStore::Open(path);
      ASSERT_TRUE(reopened.ok());
      store = std::move(reopened).value();
    }
    if (op % 100 == 0) {
      ASSERT_EQ(store.size(), reference.size()) << "op " << op;
      for (const auto& [k, v] : reference) {
        ASSERT_EQ(*store.Get(k), v) << "op " << op << " key " << k;
      }
    }
  }
  EXPECT_EQ(store.size(), reference.size());
}

}  // namespace
}  // namespace tps
