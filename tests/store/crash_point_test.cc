// Crash-point property tests for the KvStore: simulate a crash at EVERY
// byte of a realistic mutation log (puts, overwrites, deletes, a
// compaction, binary values) and assert the three recovery invariants:
//
//   1. Open never fails on a torn log — it recovers the durable prefix;
//   2. the recovered table equals a replay of exactly the records that
//      were fully on disk at the crash point;
//   3. writes issued after recovery survive the next replay (regression
//      test for the torn-tail data-loss bug, where appends landed behind
//      corrupt bytes and were silently discarded).
//
// Plus fault-injection scenarios (torn Put, failed compaction rename and
// compaction write) via FaultInjectingEnv.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "store/kv_store.h"
#include "store/record_log.h"
#include "util/fault_env.h"

namespace tps {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string ReadBytes(const std::string& path) {
  auto size = *Env::Default()->FileSize(path);
  auto file = std::move(Env::Default()->NewSequentialFile(path)).value();
  std::string bytes(static_cast<size_t>(size), '\0');
  EXPECT_EQ(*ReadFully(file.get(), bytes.size(), bytes.data()),
            bytes.size());
  return bytes;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  auto file = std::move(Env::Default()->NewTruncatedFile(path)).value();
  ASSERT_TRUE(file->Append(bytes).ok());
  ASSERT_TRUE(file->Flush().ok());
}

/// Test-side decoder for the documented mutation payload layout
/// [op][u32 key length LE][key][value...] — deliberately independent of
/// the store's own decoder.
struct Mutation {
  char op;
  std::string key;
  std::string value;
};

Mutation DecodeForTest(const std::string& payload) {
  EXPECT_GE(payload.size(), 5u);
  uint32_t key_length = 0;
  for (int i = 3; i >= 0; --i) {
    key_length = (key_length << 8) |
                 static_cast<uint8_t>(payload[1 + static_cast<size_t>(i)]);
  }
  EXPECT_LE(uint64_t{5} + key_length, payload.size());
  return Mutation{payload[0], payload.substr(5, key_length),
                  payload.substr(5 + key_length)};
}

void ApplyForTest(const Mutation& m,
                  std::map<std::string, std::string>* table) {
  if (m.op == 'P') {
    (*table)[m.key] = m.value;
  } else {
    ASSERT_EQ(m.op, 'D');
    table->erase(m.key);
  }
}

TEST(CrashPointTest, EveryBytePrefixRecoversTheDurablePrefix) {
  // Build a log that exercises every mutation shape the store emits.
  const std::string source = TempPath("crash_source.log");
  {
    auto store = std::move(KvStore::Open(source)).value();
    ASSERT_TRUE(store.Put("alpha", "1").ok());
    ASSERT_TRUE(store.Put("beta", "2").ok());
    ASSERT_TRUE(store.Put("gamma", "3").ok());
    ASSERT_TRUE(store.Put("beta", "overwritten").ok());
    ASSERT_TRUE(store.Delete("alpha").ok());
    ASSERT_TRUE(store.Compact().ok());
    ASSERT_TRUE(store.Put("delta", "4").ok());
    std::string binary = "bin";
    binary.push_back('\0');
    binary += "\xFF\n";
    ASSERT_TRUE(store.Put("binary-value", binary).ok());
    ASSERT_TRUE(store.Delete("gamma").ok());
    ASSERT_TRUE(store.Put("epsilon", "5").ok());
  }
  const std::string bytes = ReadBytes(source);

  // Record boundaries + the expected table after each whole record.
  auto contents = *ReadRecordLog(source);
  ASSERT_FALSE(contents.truncated_tail);
  ASSERT_EQ(contents.valid_prefix_bytes, bytes.size());
  std::vector<uint64_t> record_ends;
  std::vector<std::map<std::string, std::string>> state_after;
  state_after.emplace_back();  // Zero records = empty table.
  uint64_t offset = 0;
  for (const std::string& record : contents.records) {
    offset += 8 + record.size();
    record_ends.push_back(offset);
    auto next = state_after.back();
    ApplyForTest(DecodeForTest(record), &next);
    state_after.push_back(std::move(next));
  }
  ASSERT_EQ(offset, bytes.size());
  ASSERT_GE(record_ends.size(), 6u);  // The workload really is multi-record.

  const std::string crash = TempPath("crash_prefix.log");
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    SCOPED_TRACE("crash at byte " + std::to_string(cut));
    WriteBytes(crash, bytes.substr(0, cut));

    // Durable records = those wholly on disk at the crash point.
    size_t durable = 0;
    while (durable < record_ends.size() && record_ends[durable] <= cut) {
      ++durable;
    }
    const auto& expected = state_after[durable];
    const uint64_t valid_bytes = durable == 0 ? 0 : record_ends[durable - 1];

    {
      auto store_or = KvStore::Open(crash);
      ASSERT_TRUE(store_or.ok()) << store_or.status();  // Never throws/fails.
      KvStore store = std::move(store_or).value();
      ASSERT_EQ(store.size(), expected.size());
      for (const auto& [key, value] : expected) {
        ASSERT_EQ(*store.Get(key), value);
      }
      const RecoveryStats& stats = store.recovery_stats();
      EXPECT_EQ(stats.records_replayed, durable);
      EXPECT_EQ(stats.valid_prefix_bytes, valid_bytes);
      EXPECT_EQ(stats.bytes_truncated, cut - valid_bytes);
      EXPECT_EQ(stats.tail_was_torn, cut != valid_bytes);
      // The write-after-recovery half of the torn-tail regression.
      ASSERT_TRUE(store.Put("crash-probe", std::to_string(cut)).ok());
    }
    {
      auto reopened = std::move(KvStore::Open(crash)).value();
      EXPECT_FALSE(reopened.recovery_stats().tail_was_torn);
      ASSERT_EQ(*reopened.Get("crash-probe"), std::to_string(cut));
      ASSERT_EQ(reopened.size(), expected.size() + 1);
      for (const auto& [key, value] : expected) {
        ASSERT_EQ(*reopened.Get(key), value);
      }
    }
  }
}

TEST(CrashPointTest, OverflowedKeyLengthIsAStatusNotACrash) {
  // A CRC-valid record whose payload declares key_length = UINT32_MAX:
  // `5 + key_length` wraps in 32-bit arithmetic, so the unfixed decoder
  // accepted the record and overran/misparsed the payload.
  const std::string path = TempPath("crash_overflow_keylen.log");
  {
    auto writer = std::move(RecordLogWriter::Open(path)).value();
    ASSERT_TRUE(writer.Append(
        std::string("P\xFF\xFF\xFF\xFF", 5) + "abc").ok());
  }
  auto store_or = KvStore::Open(path);
  ASSERT_FALSE(store_or.ok());
  EXPECT_TRUE(store_or.status().IsInternal());
}

TEST(CrashPointTest, TornPutRecoversAndLaterWritesSurvive) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("crash_torn_put.log");
  {
    auto store = std::move(KvStore::Open(path, &env)).value();
    ASSERT_TRUE(store.Put("durable", "yes").ok());
    env.TearWrite(env.writes_seen() + 1, 7);  // Tear mid-record.
    EXPECT_TRUE(store.Put("torn", "lost").IsIOError());
  }
  env.Reset();
  {
    auto store = std::move(KvStore::Open(path, &env)).value();
    EXPECT_TRUE(store.recovery_stats().tail_was_torn);
    EXPECT_EQ(store.recovery_stats().bytes_truncated, 7u);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(*store.Get("durable"), "yes");
    EXPECT_FALSE(store.Contains("torn"));
    ASSERT_TRUE(store.Put("after-recovery", "kept").ok());
  }
  auto store = std::move(KvStore::Open(path, &env)).value();
  EXPECT_FALSE(store.recovery_stats().tail_was_torn);
  EXPECT_EQ(*store.Get("durable"), "yes");
  EXPECT_EQ(*store.Get("after-recovery"), "kept");
}

TEST(CrashPointTest, CompactionRenameFailureKeepsStoreUsable) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("crash_compact_rename.log");
  auto store = std::move(KvStore::Open(path, &env)).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Put("churn", std::string("v") + std::to_string(i)).ok());
  }
  ASSERT_TRUE(store.Put("keep", "forever").ok());

  env.FailRenames(1);
  EXPECT_TRUE(store.Compact().IsIOError());
  EXPECT_FALSE(env.FileExists(path + ".compact"));  // Temp cleaned up.

  // The store stays fully usable on the old (uncompacted) log.
  EXPECT_EQ(*store.Get("keep"), "forever");
  ASSERT_TRUE(store.Put("post-failure", "ok").ok());
  auto reopened = std::move(KvStore::Open(path, &env)).value();
  EXPECT_EQ(*reopened.Get("keep"), "forever");
  EXPECT_EQ(*reopened.Get("churn"), "v9");
  EXPECT_EQ(*reopened.Get("post-failure"), "ok");
  // And a retried compaction succeeds.
  ASSERT_TRUE(reopened.Compact().ok());
  EXPECT_EQ(reopened.log_records(), 3u);
}

TEST(CrashPointTest, CompactionWriteFailureKeepsOldLog) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("crash_compact_write.log");
  auto store = std::move(KvStore::Open(path, &env)).value();
  ASSERT_TRUE(store.Put("a", "1").ok());
  ASSERT_TRUE(store.Put("b", "2").ok());

  env.FailWrite(env.writes_seen() + 2);  // Second record of the rewrite.
  EXPECT_TRUE(store.Compact().IsIOError());
  EXPECT_FALSE(env.FileExists(path + ".compact"));

  EXPECT_EQ(*store.Get("a"), "1");
  EXPECT_EQ(*store.Get("b"), "2");
  ASSERT_TRUE(store.Put("c", "3").ok());
  auto reopened = std::move(KvStore::Open(path, &env)).value();
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_EQ(*reopened.Get("c"), "3");
}

}  // namespace
}  // namespace tps
