#include "util/crc32.h"

#include <gtest/gtest.h>

namespace tps {
namespace {

TEST(Crc32Test, KnownTestVectors) {
  // Standard CRC-32/IEEE check values.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc"), 0x352441C2u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "incremental checksum computation";
  uint32_t state = Crc32Init();
  state = Crc32Update(state, data.data(), 10);
  state = Crc32Update(state, data.data() + 10, data.size() - 10);
  EXPECT_EQ(Crc32Finish(state), Crc32(data));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "payload protected by checksum";
  const uint32_t original = Crc32(data);
  data[5] = static_cast<char>(data[5] ^ 0x01);
  EXPECT_NE(Crc32(data), original);
}

TEST(Crc32Test, BinaryDataWithEmbeddedNulls) {
  const char data[] = {0x00, 0x01, 0x00, static_cast<char>(0xFF), 0x00};
  EXPECT_NE(Crc32(data, sizeof(data)), Crc32(data, sizeof(data) - 1));
}

}  // namespace
}  // namespace tps
