#include "store/model_store.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "data/registry.h"
#include "model/paper_zoo.h"
#include "sim/finetune_simulator.h"
#include "store/spec_serialization.h"

namespace tps {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(SpecSerializationTest, ModelSpecRoundTrips) {
  const ModelSpec original = NlpPaperZooSpecs()[3];
  auto text = SerializeModelSpec(original);
  ASSERT_TRUE(text.ok());
  auto restored = DeserializeModelSpec(*text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->name, original.name);
  EXPECT_EQ(restored->domain, original.domain);
  EXPECT_EQ(restored->family, original.family);
  EXPECT_DOUBLE_EQ(restored->scale_millions, original.scale_millions);
  EXPECT_DOUBLE_EQ(restored->capability, original.capability);
  EXPECT_EQ(restored->pretrain_tags, original.pretrain_tags);
  EXPECT_EQ(restored->finetune_tags, original.finetune_tags);
  EXPECT_DOUBLE_EQ(restored->finetune_strength,
                   original.finetune_strength);
  EXPECT_EQ(restored->num_source_labels, original.num_source_labels);
  EXPECT_EQ(restored->description, original.description);
}

TEST(SpecSerializationTest, RoundTrippedSpecBuildsIdenticalModel) {
  const ModelSpec original = CvPaperZooSpecs()[7];
  auto restored = *DeserializeModelSpec(*SerializeModelSpec(original));
  auto model_a = *PretrainedModel::Create(original);
  auto model_b = *PretrainedModel::Create(restored);
  EXPECT_EQ(model_a.affinity(), model_b.affinity());
  EXPECT_DOUBLE_EQ(model_a.capability(), model_b.capability());
}

TEST(SpecSerializationTest, DatasetSpecRoundTrips) {
  const DatasetSpec original = NlpTargetSpecs()[1];  // mnli, has overrides.
  auto restored = *DeserializeDatasetSpec(*SerializeDatasetSpec(original));
  EXPECT_EQ(restored.name, original.name);
  EXPECT_EQ(restored.role, original.role);
  EXPECT_EQ(restored.num_labels, original.num_labels);
  EXPECT_EQ(restored.tags, original.tags);
  EXPECT_DOUBLE_EQ(restored.chance_accuracy, original.chance_accuracy);
  EXPECT_DOUBLE_EQ(restored.ceiling_accuracy, original.ceiling_accuracy);
  // The rebuilt dataset is byte-identical.
  auto ds_a = *Dataset::Create(original);
  auto ds_b = *Dataset::Create(restored);
  EXPECT_EQ(ds_a.domain_vector(), ds_b.domain_vector());
}

TEST(SpecSerializationTest, RejectsGarbage) {
  EXPECT_TRUE(DeserializeModelSpec("nonsense").status().IsInvalidArgument());
  EXPECT_TRUE(
      DeserializeDatasetSpec("nonsense").status().IsInvalidArgument());
  ModelSpec bad = NlpPaperZooSpecs()[0];
  bad.description = "has\ttab";
  EXPECT_TRUE(SerializeModelSpec(bad).status().IsInvalidArgument());
}

TEST(ModelStoreTest, CatalogWorkflow) {
  auto store = std::move(ModelStore::Open(TempPath("model_store.log"))).value();

  // Register the NLP zoo and two datasets.
  for (const ModelSpec& spec : NlpPaperZooSpecs()) {
    ASSERT_TRUE(store.PutModelSpec(spec).ok());
  }
  ASSERT_TRUE(store.PutDatasetSpec(NlpBenchmarkSpecs()[0]).ok());
  ASSERT_TRUE(store.PutDatasetSpec(NlpTargetSpecs()[0]).ok());

  EXPECT_EQ(store.ListModels().size(), 40u);
  EXPECT_EQ(store.ListDatasets().size(), 2u);
  auto spec = store.GetModelSpec("roberta-base");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->family, "roberta");

  ASSERT_TRUE(store.DeleteModelSpec("roberta-base").ok());
  EXPECT_TRUE(store.GetModelSpec("roberta-base").status().IsNotFound());
  EXPECT_EQ(store.ListModels().size(), 39u);
}

TEST(ModelStoreTest, OfflineArtifactsRoundTripThroughStore) {
  const std::string path = TempPath("model_store_artifacts.log");
  auto registry = *DatasetRegistry::CreatePaperInventory();
  auto zoo = *ModelZoo::Create(CvPaperZooSpecs());
  FineTuneSimulator simulator;
  auto matrix = *PerformanceMatrix::Build(
      zoo, registry.Benchmarks(TaskDomain::kCV), simulator,
      Hyperparams::DefaultsFor(TaskDomain::kCV));
  auto clustering = *ClusterModels(matrix, zoo, ModelClusteringOptions());

  {
    auto store = std::move(ModelStore::Open(path)).value();
    ASSERT_TRUE(store.PutPerformanceMatrix("cv-v1", matrix).ok());
    ASSERT_TRUE(store.PutClustering("cv-v1", clustering).ok());
  }

  // Reopen (fresh process) and verify full fidelity.
  auto store = std::move(ModelStore::Open(path)).value();
  auto matrix2 = store.GetPerformanceMatrix("cv-v1");
  ASSERT_TRUE(matrix2.ok()) << matrix2.status().ToString();
  EXPECT_TRUE(matrix2->accuracy().ApproxEquals(matrix.accuracy()));
  EXPECT_EQ(matrix2->model_names(), matrix.model_names());

  auto clustering2 = store.GetClustering("cv-v1");
  ASSERT_TRUE(clustering2.ok());
  EXPECT_EQ(clustering2->clusters.assignments,
            clustering.clusters.assignments);
  EXPECT_EQ(clustering2->representatives, clustering.representatives);

  EXPECT_TRUE(store.GetPerformanceMatrix("absent").status().IsNotFound());
  EXPECT_TRUE(store.GetClustering("absent").status().IsNotFound());
}

TEST(ModelStoreTest, CompactionPreservesCatalog) {
  const std::string path = TempPath("model_store_compact.log");
  auto store = std::move(ModelStore::Open(path)).value();
  for (int round = 0; round < 5; ++round) {
    for (const ModelSpec& spec : CvPaperZooSpecs()) {
      ASSERT_TRUE(store.PutModelSpec(spec).ok());  // Repeated overwrites.
    }
  }
  ASSERT_TRUE(store.Compact().ok());
  EXPECT_EQ(store.ListModels().size(), 30u);
  auto reopened = std::move(ModelStore::Open(path)).value();
  EXPECT_EQ(reopened.ListModels().size(), 30u);
}

TEST(ModelStoreTest, EmptyIdsRejected) {
  auto store = std::move(ModelStore::Open(TempPath("model_store_ids.log"))).value();
  ModelSpec nameless;
  EXPECT_TRUE(store.PutModelSpec(nameless).IsInvalidArgument());
  DatasetSpec nameless_ds;
  EXPECT_TRUE(store.PutDatasetSpec(nameless_ds).IsInvalidArgument());
}

}  // namespace
}  // namespace tps
