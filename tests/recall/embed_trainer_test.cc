#include "recall/embed_trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "data/registry.h"
#include "model/paper_zoo.h"
#include "sim/finetune_simulator.h"
#include "util/thread_pool.h"

namespace tps {
namespace recall {
namespace {

// The two-tower trainer's contracts: deterministic for any thread count
// (bit-identical artifacts), a decreasing training curve, a lossless text
// codec, and loud rejection of inconsistent inputs.

class EmbedTrainerTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    ModelZoo zoo = *ModelZoo::Create(NlpPaperZooSpecs());
    FineTuneSimulator simulator;
    matrix_ = new PerformanceMatrix(*PerformanceMatrix::Build(
        zoo, registry_->Benchmarks(TaskDomain::kNLP), simulator,
        Hyperparams::DefaultsFor(TaskDomain::kNLP)));
    benchmarks_ = new std::vector<const Dataset*>(
        registry_->Benchmarks(TaskDomain::kNLP));
  }

  static EmbeddingConfig FastConfig() {
    EmbeddingConfig config;
    config.epochs = 40;  // Enough to see the curve move; fast in ctest.
    return config;
  }

  static DatasetRegistry* registry_;
  static PerformanceMatrix* matrix_;
  static std::vector<const Dataset*>* benchmarks_;
};

DatasetRegistry* EmbedTrainerTest::registry_ = nullptr;
PerformanceMatrix* EmbedTrainerTest::matrix_ = nullptr;
std::vector<const Dataset*>* EmbedTrainerTest::benchmarks_ = nullptr;

TEST_F(EmbedTrainerTest, TrainsAnArtifactWithTheRightShape) {
  const EmbeddingConfig config = FastConfig();
  auto result = TrainRecallEmbeddings(*matrix_, *benchmarks_, config);
  ASSERT_TRUE(result.ok()) << result.status().message();
  const RecallEmbeddings& emb = result->embeddings;
  EXPECT_EQ(emb.num_models(), matrix_->num_models());
  EXPECT_EQ(emb.dim(), config.dim);
  EXPECT_EQ(emb.feature_dim(),
            (*benchmarks_)[0]->domain_vector().size() + 1);
  EXPECT_EQ(emb.model_names(), matrix_->model_names());
  EXPECT_EQ(emb.prior(), matrix_->ModelAverageAccuracies());
  EXPECT_EQ(result->epoch_losses.size(),
            static_cast<size_t>(config.epochs));
}

TEST_F(EmbedTrainerTest, TrainingLossDecreases) {
  auto result = TrainRecallEmbeddings(*matrix_, *benchmarks_, FastConfig());
  ASSERT_TRUE(result.ok());
  const std::vector<double>& losses = result->epoch_losses;
  EXPECT_LT(losses.back(), losses.front());
  for (double loss : losses) EXPECT_TRUE(std::isfinite(loss));
}

TEST_F(EmbedTrainerTest, BitIdenticalForAnyThreadCount) {
  const EmbeddingConfig config = FastConfig();
  auto serial = TrainRecallEmbeddings(*matrix_, *benchmarks_, config);
  ASSERT_TRUE(serial.ok());
  const std::string golden = serial->embeddings.Serialize();
  for (int threads : {3, 7}) {
    ThreadPool pool(threads);
    auto pooled =
        TrainRecallEmbeddings(*matrix_, *benchmarks_, config, &pool);
    ASSERT_TRUE(pooled.ok());
    // The artifact AND the whole training curve, bit for bit.
    EXPECT_EQ(pooled->embeddings.Serialize(), golden)
        << "artifact diverged at " << threads << " threads";
    EXPECT_EQ(pooled->epoch_losses, serial->epoch_losses)
        << "loss curve diverged at " << threads << " threads";
  }
}

TEST_F(EmbedTrainerTest, CodecRoundTripIsLossless) {
  auto result = TrainRecallEmbeddings(*matrix_, *benchmarks_, FastConfig());
  ASSERT_TRUE(result.ok());
  const RecallEmbeddings& emb = result->embeddings;
  const std::string text = emb.Serialize();
  auto restored = RecallEmbeddings::Deserialize(text);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored->Serialize(), text);
  EXPECT_EQ(restored->model_names(), emb.model_names());
  EXPECT_EQ(restored->prior(), emb.prior());
  EXPECT_EQ(restored->model_embeddings(), emb.model_embeddings());
  EXPECT_EQ(restored->config().weight_decay, emb.config().weight_decay);
  EXPECT_EQ(restored->config().seed, emb.config().seed);
}

TEST_F(EmbedTrainerTest, FileRoundTripIsLossless) {
  auto result = TrainRecallEmbeddings(*matrix_, *benchmarks_, FastConfig());
  ASSERT_TRUE(result.ok());
  const std::string path = testing::TempDir() + "/embeddings.txt";
  ASSERT_TRUE(result->embeddings.SaveToFile(path).ok());
  auto loaded = RecallEmbeddings::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->Serialize(), result->embeddings.Serialize());
}

TEST_F(EmbedTrainerTest, RejectsBenchmarksOutOfOrder) {
  std::vector<const Dataset*> shuffled = *benchmarks_;
  ASSERT_GE(shuffled.size(), 2u);
  std::swap(shuffled[0], shuffled[1]);
  auto result = TrainRecallEmbeddings(*matrix_, shuffled, FastConfig());
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(EmbedTrainerTest, RejectsBenchmarkCountMismatch) {
  std::vector<const Dataset*> truncated = *benchmarks_;
  truncated.pop_back();
  auto result = TrainRecallEmbeddings(*matrix_, truncated, FastConfig());
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(EmbedTrainerTest, RejectsInvalidConfigs) {
  EmbeddingConfig bad_dim = FastConfig();
  bad_dim.dim = 0;
  EXPECT_TRUE(TrainRecallEmbeddings(*matrix_, *benchmarks_, bad_dim)
                  .status()
                  .IsInvalidArgument());
  EmbeddingConfig bad_lr = FastConfig();
  bad_lr.learning_rate = 0.0;
  EXPECT_TRUE(TrainRecallEmbeddings(*matrix_, *benchmarks_, bad_lr)
                  .status()
                  .IsInvalidArgument());
  EmbeddingConfig bad_temp = FastConfig();
  bad_temp.temperature = -1.0;
  EXPECT_TRUE(TrainRecallEmbeddings(*matrix_, *benchmarks_, bad_temp)
                  .status()
                  .IsInvalidArgument());
  EmbeddingConfig bad_decay = FastConfig();
  bad_decay.weight_decay = -0.1;
  EXPECT_TRUE(TrainRecallEmbeddings(*matrix_, *benchmarks_, bad_decay)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(EmbedTrainerTest, SeedChangesTheArtifact) {
  EmbeddingConfig config = FastConfig();
  auto a = TrainRecallEmbeddings(*matrix_, *benchmarks_, config);
  config.seed = 99;
  auto b = TrainRecallEmbeddings(*matrix_, *benchmarks_, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->embeddings.Serialize(), b->embeddings.Serialize());
}

}  // namespace
}  // namespace recall
}  // namespace tps
