#include "recall/recall_backend.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/two_phase.h"
#include "data/registry.h"
#include "index/ivf_index.h"
#include "model/paper_zoo.h"
#include "recall/embed_trainer.h"
#include "util/thread_pool.h"

namespace tps {
namespace recall {
namespace {

// The interchangeability contracts of the pluggable recall backends:
// "representative" is a pure delegation to CoarseRecall (bit-identical
// ranking AND epoch ledger, serial or pooled, legacy or indexed), routing
// a TwoPhaseSelector through it changes nothing, "embedding" ranks with
// dot products only (zero proxies, zero budget), and "hybrid" charges
// exactly what its representative leg charged.

void ExpectSameRanking(const RecallResult& a, const RecallResult& b) {
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].model_index, b.ranked[i].model_index) << "rank " << i;
    EXPECT_EQ(a.ranked[i].recall_score, b.ranked[i].recall_score) << "rank " << i;
    EXPECT_EQ(a.ranked[i].prior_accuracy, b.ranked[i].prior_accuracy)
        << "rank " << i;
    EXPECT_EQ(a.ranked[i].proxy_component, b.ranked[i].proxy_component)
        << "rank " << i;
    EXPECT_EQ(a.ranked[i].via_propagation, b.ranked[i].via_propagation)
        << "rank " << i;
  }
  EXPECT_EQ(a.proxies_computed, b.proxies_computed);
}

void ExpectSameLedger(const EpochBudget& a, const EpochBudget& b) {
  EXPECT_EQ(a.training_epochs(), b.training_epochs());
  EXPECT_EQ(a.inference_epochs(), b.inference_epochs());
}

class BackendEquivalenceTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new ModelZoo(*ModelZoo::Create(NlpPaperZooSpecs()));
    registry_ =
        new DatasetRegistry(*DatasetRegistry::CreatePaperInventory());
    simulator_ = new FineTuneSimulator();
    matrix_ = new PerformanceMatrix(*PerformanceMatrix::Build(
        *zoo_, registry_->Benchmarks(TaskDomain::kNLP), *simulator_,
        Hyperparams::DefaultsFor(TaskDomain::kNLP)));
    clustering_ = new ModelClustering(
        *ClusterModels(*matrix_, *zoo_, ModelClusteringOptions()));
    EmbeddingConfig config;
    config.epochs = 60;  // Rankings just need a trained artifact, not the
                         // full 300-epoch production curve.
    embeddings_ = new RecallEmbeddings(
        std::move(TrainRecallEmbeddings(*matrix_,
                                        registry_->Benchmarks(TaskDomain::kNLP),
                                        config)
                      ->embeddings));
    embedding_index_ = new IvfIndex(*IvfIndex::Build(
        embeddings_->model_embeddings(), embeddings_->prior(),
        IvfIndexOptions()));
    target_ = *registry_->Find("mnli");
  }

  static RecallBackendContext FullContext() {
    RecallBackendContext context;
    context.zoo = zoo_;
    context.matrix = matrix_;
    context.clustering = clustering_;
    context.embeddings = embeddings_;
    context.embedding_index = embedding_index_;
    return context;
  }

  static ModelZoo* zoo_;
  static DatasetRegistry* registry_;
  static FineTuneSimulator* simulator_;
  static PerformanceMatrix* matrix_;
  static ModelClustering* clustering_;
  static RecallEmbeddings* embeddings_;
  static IvfIndex* embedding_index_;
  static const Dataset* target_;
};

ModelZoo* BackendEquivalenceTest::zoo_ = nullptr;
DatasetRegistry* BackendEquivalenceTest::registry_ = nullptr;
FineTuneSimulator* BackendEquivalenceTest::simulator_ = nullptr;
PerformanceMatrix* BackendEquivalenceTest::matrix_ = nullptr;
ModelClustering* BackendEquivalenceTest::clustering_ = nullptr;
RecallEmbeddings* BackendEquivalenceTest::embeddings_ = nullptr;
IvfIndex* BackendEquivalenceTest::embedding_index_ = nullptr;
const Dataset* BackendEquivalenceTest::target_ = nullptr;

TEST_F(BackendEquivalenceTest, RepresentativeIsBitIdenticalToCoarseRecall) {
  auto backend = CreateRecallBackend("representative", FullContext());
  ASSERT_TRUE(backend.ok()) << backend.status().message();
  CoarseRecall direct(zoo_, matrix_, clustering_);
  const RecallOptions options;
  for (int threads : {0, 4}) {
    ThreadPool pool(threads == 0 ? 1 : threads);
    ThreadPool* p = threads == 0 ? nullptr : &pool;
    EpochBudget direct_budget;
    EpochBudget backend_budget;
    auto want = direct.Recall(*target_, options, &direct_budget, p);
    auto got = (*backend)->Recall(*target_, options, &backend_budget, p);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok()) << got.status().message();
    ExpectSameRanking(*want, *got);
    ExpectSameLedger(direct_budget, backend_budget);
  }
}

TEST_F(BackendEquivalenceTest, RepresentativeDelegatesIndexModeUnchanged) {
  // An accuracy-vector IVF in options.index must pass straight through the
  // backend: the indexed delegation is bit-identical to calling
  // CoarseRecall with the same index, ledger included.
  IvfIndexOptions index_options;
  index_options.propagation_neighbors = 0;  // Exact propagation.
  auto index = IvfIndex::Build(matrix_->ModelVectors(),
                               matrix_->ModelAverageAccuracies(),
                               index_options);
  ASSERT_TRUE(index.ok()) << index.status().message();
  RecallOptions options;
  options.index = &*index;
  auto backend = CreateRecallBackend("representative", FullContext());
  ASSERT_TRUE(backend.ok());
  CoarseRecall direct(zoo_, matrix_, clustering_);
  EpochBudget direct_budget;
  EpochBudget backend_budget;
  auto want = direct.Recall(*target_, options, &direct_budget);
  auto got = (*backend)->Recall(*target_, options, &backend_budget);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok()) << got.status().message();
  ExpectSameRanking(*want, *got);
  ExpectSameLedger(direct_budget, backend_budget);
}

TEST_F(BackendEquivalenceTest, RoutedSelectorMatchesUnroutedBitForBit) {
  auto backend = CreateRecallBackend("representative", FullContext());
  ASSERT_TRUE(backend.ok());
  TwoPhaseSelector selector(zoo_, matrix_, clustering_, simulator_);
  TwoPhaseOptions unrouted;
  TwoPhaseOptions routed;
  routed.recall.backend = backend->get();
  auto want = selector.Select(*target_, unrouted);
  auto got = selector.Select(*target_, routed);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok()) << got.status().message();
  ExpectSameRanking(want->recall, got->recall);
  ExpectSameLedger(want->budget, got->budget);
  EXPECT_EQ(want->selection.selected_model, got->selection.selected_model);
  EXPECT_EQ(want->selection.selected_accuracy, got->selection.selected_accuracy);
  EXPECT_EQ(want->selection.training_epochs, got->selection.training_epochs);
  EXPECT_EQ(want->selection.survivors_per_stage,
            got->selection.survivors_per_stage);
}

TEST_F(BackendEquivalenceTest, EmbeddingRanksWithoutChargingTheBudget) {
  auto backend = CreateRecallBackend("embedding", FullContext());
  ASSERT_TRUE(backend.ok()) << backend.status().message();
  EpochBudget budget;
  auto result = (*backend)->Recall(*target_, RecallOptions(), &budget);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->proxies_computed, 0u);
  EXPECT_EQ(budget.training_epochs(), 0.0);
  EXPECT_EQ(budget.inference_epochs(), 0.0);
  EXPECT_FALSE(result->ranked.empty());
  for (size_t i = 1; i < result->ranked.size(); ++i) {
    EXPECT_GE(result->ranked[i - 1].recall_score,
              result->ranked[i].recall_score);
  }
  // Deterministic: a second run is bit-identical.
  auto again = (*backend)->Recall(*target_, RecallOptions(), nullptr);
  ASSERT_TRUE(again.ok());
  ExpectSameRanking(*result, *again);
}

TEST_F(BackendEquivalenceTest, EmbeddingWithoutIndexRanksTheWholeZoo) {
  RecallBackendContext context = FullContext();
  context.embedding_index = nullptr;
  auto backend = CreateRecallBackend("embedding", context);
  ASSERT_TRUE(backend.ok());
  auto result = (*backend)->Recall(*target_, RecallOptions(), nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ranked.size(), zoo_->size());
}

TEST_F(BackendEquivalenceTest, EmbeddingIndexNprobeBoundsTheCandidates) {
  auto backend = CreateRecallBackend("embedding", FullContext());
  ASSERT_TRUE(backend.ok());
  RecallOptions narrow;
  narrow.nprobe = 1;
  auto narrowed = (*backend)->Recall(*target_, narrow, nullptr);
  ASSERT_TRUE(narrowed.ok());
  // One probed partition -> exactly that posting list, a strict subset of
  // the zoo, and every candidate really lives in the probed partition.
  auto query = embeddings_->EmbedDataset(*target_);
  ASSERT_TRUE(query.ok());
  const std::vector<size_t> probed =
      embedding_index_->ProbePartitionsNearQuery(*query, 1);
  ASSERT_EQ(probed.size(), 1u);
  const std::vector<size_t>& members =
      embedding_index_->structure().members[probed[0]];
  EXPECT_EQ(narrowed->ranked.size(), members.size());
  EXPECT_LT(narrowed->ranked.size(), zoo_->size());
  for (const RecallEntry& entry : narrowed->ranked) {
    EXPECT_NE(std::find(members.begin(), members.end(), entry.model_index),
              members.end())
        << "model " << entry.model_index << " is not in probed partition";
  }
}

TEST_F(BackendEquivalenceTest, HybridChargesOnlyTheRepresentativeLeg) {
  auto hybrid = CreateRecallBackend("hybrid", FullContext());
  auto representative = CreateRecallBackend("representative", FullContext());
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().message();
  ASSERT_TRUE(representative.ok());
  EpochBudget hybrid_budget;
  EpochBudget representative_budget;
  auto fused = (*hybrid)->Recall(*target_, RecallOptions(), &hybrid_budget);
  auto rep =
      (*representative)->Recall(*target_, RecallOptions(), &representative_budget);
  ASSERT_TRUE(fused.ok()) << fused.status().message();
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(fused->proxies_computed, rep->proxies_computed);
  ExpectSameLedger(hybrid_budget, representative_budget);
  // Union of the two candidate sets, sorted by fused score.
  EXPECT_GE(fused->ranked.size(), rep->ranked.size());
  for (size_t i = 1; i < fused->ranked.size(); ++i) {
    EXPECT_GE(fused->ranked[i - 1].recall_score,
              fused->ranked[i].recall_score);
  }
  // Deterministic: a second run is bit-identical.
  auto again = (*hybrid)->Recall(*target_, RecallOptions(), nullptr);
  ASSERT_TRUE(again.ok());
  ExpectSameRanking(*fused, *again);
}

TEST_F(BackendEquivalenceTest, RegistryResolvesAndRejects) {
  const std::vector<std::string> names = RecallBackendNames();
  for (const char* expected : {"embedding", "hybrid", "representative"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " is not registered";
  }
  EXPECT_TRUE(
      CreateRecallBackend("bogus", FullContext()).status().IsNotFound());

  // Without trained embeddings, only the representative backend survives.
  RecallBackendContext bare = FullContext();
  bare.embeddings = nullptr;
  bare.embedding_index = nullptr;
  EXPECT_TRUE(
      CreateRecallBackend("embedding", bare).status().IsFailedPrecondition());
  EXPECT_TRUE(
      CreateRecallBackend("hybrid", bare).status().IsFailedPrecondition());
  const RecallBackendSet set(bare);
  EXPECT_EQ(set.available(), std::vector<std::string>{"representative"});
  EXPECT_TRUE(set.Find("embedding").status().IsFailedPrecondition());
  EXPECT_TRUE(set.Find("no-such-backend").status().IsNotFound());
  auto found = set.Find("representative");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->name(), "representative");

  // With embeddings, all three serve.
  const RecallBackendSet full(FullContext());
  EXPECT_EQ(full.available(),
            (std::vector<std::string>{"embedding", "hybrid",
                                      "representative"}));
}

}  // namespace
}  // namespace recall
}  // namespace tps
