#include "clustering/kmeans.h"

#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tps {
namespace {

/// Three well-separated 2-D blobs of `per_blob` points each.
Matrix ThreeBlobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  Matrix points(3 * per_blob, 2);
  for (size_t b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      points.At(b * per_blob + i, 0) = centers[b][0] + 0.3 * rng.Normal();
      points.At(b * per_blob + i, 1) = centers[b][1] + 0.3 * rng.Normal();
    }
  }
  return points;
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  const Matrix points = ThreeBlobs(20, 1);
  KMeansOptions options;
  options.num_clusters = 3;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  // All points of a blob share one label, and the three labels differ.
  std::set<int> blob_labels;
  for (size_t b = 0; b < 3; ++b) {
    const int label = result->clustering.assignments[b * 20];
    blob_labels.insert(label);
    for (size_t i = 0; i < 20; ++i) {
      EXPECT_EQ(result->clustering.assignments[b * 20 + i], label);
    }
  }
  EXPECT_EQ(blob_labels.size(), 3u);
  EXPECT_LT(result->inertia, 60.0 * 0.3 * 0.3 * 4.0);
}

TEST(KMeansTest, KEqualsOnePutsEverythingTogether) {
  const Matrix points = ThreeBlobs(5, 2);
  KMeansOptions options;
  options.num_clusters = 1;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  for (int a : result->clustering.assignments) EXPECT_EQ(a, 0);
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  const Matrix points = ThreeBlobs(2, 3);  // 6 points.
  KMeansOptions options;
  options.num_clusters = 6;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-9);
  EXPECT_EQ(result->clustering.NumSingletons(), 6u);
}

TEST(KMeansTest, DeterministicForSeed) {
  const Matrix points = ThreeBlobs(10, 4);
  KMeansOptions options;
  options.num_clusters = 3;
  options.seed = 99;
  auto a = KMeans(points, options);
  auto b = KMeans(points, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->clustering.assignments, b->clustering.assignments);
  EXPECT_DOUBLE_EQ(a->inertia, b->inertia);
}

TEST(KMeansTest, ValidatesOptions) {
  const Matrix points = ThreeBlobs(2, 5);
  KMeansOptions options;
  options.num_clusters = 0;
  EXPECT_TRUE(KMeans(points, options).status().IsInvalidArgument());
  options.num_clusters = 100;  // More clusters than points.
  EXPECT_TRUE(KMeans(points, options).status().IsInvalidArgument());
  options.num_clusters = 2;
  options.restarts = 0;
  EXPECT_TRUE(KMeans(points, options).status().IsInvalidArgument());
}

TEST(KMeans1DTest, ClustersScalarValues) {
  const std::vector<double> values = {0.1, 0.12, 0.11, 0.9, 0.88, 0.91};
  KMeansOptions options;
  options.num_clusters = 2;
  auto result = KMeans1D(values, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.assignments[0],
            result->clustering.assignments[1]);
  EXPECT_EQ(result->clustering.assignments[3],
            result->clustering.assignments[4]);
  EXPECT_NE(result->clustering.assignments[0],
            result->clustering.assignments[3]);
}

TEST(ClusteringResultTest, MembersSizesSingletons) {
  ClusteringResult clustering;
  clustering.assignments = {0, 1, 0, 2};
  clustering.num_clusters = 3;
  EXPECT_EQ(clustering.Members(0), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(clustering.Sizes(), (std::vector<size_t>{2, 1, 1}));
  EXPECT_EQ(clustering.NumSingletons(), 2u);
  EXPECT_EQ(clustering.num_items(), 4u);
}

}  // namespace
}  // namespace tps
