#include "clustering/distance.h"


#include <cmath>
#include <gtest/gtest.h>

namespace tps {
namespace {

TEST(DistanceTest, PerformanceSimilarityEq1KnownValues) {
  // |diffs| = {0.1, 0.3, 0.2}; top-2 mean = 0.25; sim = 0.75.
  const std::vector<double> a = {0.8, 0.5, 0.9};
  const std::vector<double> b = {0.7, 0.8, 0.7};
  EXPECT_NEAR(PerformanceSimilarity(a, b, 2), 0.75, 1e-12);
  EXPECT_NEAR(PerformanceSimilarity(a, b, 1), 0.70, 1e-12);
  EXPECT_NEAR(PerformanceSimilarity(a, b, 3), 0.80, 1e-12);
}

TEST(DistanceTest, IdenticalVectorsHaveSimilarityOne) {
  const std::vector<double> v = {0.2, 0.4, 0.6};
  EXPECT_DOUBLE_EQ(PerformanceSimilarity(v, v, 2), 1.0);
}

TEST(DistanceTest, MetricDispatch) {
  const std::vector<double> a = {1.0, 0.0};
  const std::vector<double> b = {0.0, 1.0};
  EXPECT_NEAR(Distance(a, b, DistanceMetric::kEuclidean), std::sqrt(2.0),
              1e-12);
  EXPECT_NEAR(Distance(a, b, DistanceMetric::kCosine), 1.0, 1e-12);
  EXPECT_NEAR(Distance(a, b, DistanceMetric::kTopKAbsDiff, 1), 1.0, 1e-12);
  EXPECT_NEAR(Distance(a, b, DistanceMetric::kTopKAbsDiff, 2), 1.0, 1e-12);
}

TEST(DistanceTest, PairwiseMatrixIsSymmetricWithZeroDiagonal) {
  const std::vector<std::vector<double>> vectors = {
      {0.1, 0.2}, {0.5, 0.1}, {0.9, 0.9}};
  for (auto metric : {DistanceMetric::kEuclidean, DistanceMetric::kCosine,
                      DistanceMetric::kTopKAbsDiff}) {
    auto distances = PairwiseDistances(vectors, metric, 2);
    ASSERT_TRUE(distances.ok());
    EXPECT_EQ(distances->rows(), 3u);
    EXPECT_EQ(distances->cols(), 3u);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(distances->At(i, i), 0.0);
      for (size_t j = 0; j < 3; ++j) {
        EXPECT_DOUBLE_EQ(distances->At(i, j), distances->At(j, i));
      }
    }
  }
}

TEST(DistanceTest, PairwiseFromMatrixRowsMatchesVectors) {
  auto rows = *Matrix::FromRows({{0.1, 0.2}, {0.5, 0.1}});
  auto from_matrix =
      *PairwiseDistances(rows, DistanceMetric::kEuclidean);
  auto from_vectors = *PairwiseDistances(
      std::vector<std::vector<double>>{{0.1, 0.2}, {0.5, 0.1}},
      DistanceMetric::kEuclidean);
  EXPECT_TRUE(from_matrix.ApproxEquals(from_vectors));
}

TEST(DistanceTest, PairwiseRejectsEmptyAndRagged) {
  EXPECT_TRUE(PairwiseDistances(std::vector<std::vector<double>>{},
                                DistanceMetric::kEuclidean)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PairwiseDistances(
                  std::vector<std::vector<double>>{{1.0}, {1.0, 2.0}},
                  DistanceMetric::kEuclidean)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace tps
