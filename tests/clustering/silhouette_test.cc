#include "clustering/silhouette.h"

#include <gtest/gtest.h>

#include "clustering/distance.h"
#include "util/rng.h"

namespace tps {
namespace {

Matrix DistancesFor(const std::vector<std::vector<double>>& points) {
  return *PairwiseDistances(points, DistanceMetric::kEuclidean);
}

TEST(SilhouetteTest, TightSeparatedClustersScoreNearOne) {
  const Matrix d = DistancesFor(
      {{0.0}, {0.01}, {0.02}, {10.0}, {10.01}, {10.02}});
  ClusteringResult clustering;
  clustering.assignments = {0, 0, 0, 1, 1, 1};
  clustering.num_clusters = 2;
  auto score = SilhouetteScore(d, clustering);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(*score, 0.99);
}

TEST(SilhouetteTest, WrongAssignmentScoresNegative) {
  const Matrix d = DistancesFor({{0.0}, {0.1}, {10.0}, {10.1}});
  ClusteringResult clustering;
  clustering.assignments = {0, 1, 0, 1};  // Splits both true pairs.
  clustering.num_clusters = 2;
  auto score = SilhouetteScore(d, clustering);
  ASSERT_TRUE(score.ok());
  EXPECT_LT(*score, 0.0);
}

TEST(SilhouetteTest, RandomAssignmentNearZeroOnStructurelessData) {
  Rng rng(7);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back({rng.Uniform(), rng.Uniform()});
  }
  ClusteringResult clustering;
  clustering.num_clusters = 4;
  for (int i = 0; i < 40; ++i) {
    clustering.assignments.push_back(
        static_cast<int>(rng.UniformInt(uint64_t{4})));
  }
  auto score = SilhouetteScore(DistancesFor(points), clustering);
  ASSERT_TRUE(score.ok());
  EXPECT_NEAR(*score, 0.0, 0.2);
}

TEST(SilhouetteTest, SingletonClustersContributeZero) {
  const Matrix d = DistancesFor({{0.0}, {0.1}, {5.0}});
  ClusteringResult clustering;
  clustering.assignments = {0, 0, 1};  // Item 2 is a singleton.
  clustering.num_clusters = 2;
  auto score = SilhouetteScore(d, clustering);
  ASSERT_TRUE(score.ok());
  // Items 0,1: a = 0.1, b = ~5; s ~ 0.98 each; singleton contributes 0.
  EXPECT_NEAR(*score, 2.0 * 0.98 / 3.0, 0.02);
}

TEST(SilhouetteTest, InputValidation) {
  const Matrix d = DistancesFor({{0.0}, {1.0}});
  ClusteringResult clustering;
  clustering.assignments = {0, 0};
  clustering.num_clusters = 1;
  EXPECT_TRUE(SilhouetteScore(d, clustering).status().IsInvalidArgument());

  clustering.num_clusters = 2;
  clustering.assignments = {0};  // Size mismatch.
  EXPECT_TRUE(SilhouetteScore(d, clustering).status().IsInvalidArgument());

  clustering.assignments = {0, 5};  // Out of range.
  EXPECT_TRUE(SilhouetteScore(d, clustering).status().IsOutOfRange());

  clustering.assignments = {0, 0};  // Only one populated cluster of 2.
  EXPECT_TRUE(SilhouetteScore(d, clustering).status().IsInvalidArgument());

  EXPECT_TRUE(SilhouetteScore(Matrix(2, 3), clustering)
                  .status()
                  .IsInvalidArgument());
}

class SilhouetteSeparationTest : public testing::TestWithParam<double> {};

TEST_P(SilhouetteSeparationTest, ScoreGrowsWithSeparation) {
  // Property: pulling two blobs apart monotonically raises the silhouette.
  const double gap = GetParam();
  Rng rng(21);
  std::vector<std::vector<double>> points;
  ClusteringResult clustering;
  clustering.num_clusters = 2;
  for (int i = 0; i < 10; ++i) {
    points.push_back({0.5 * rng.Normal()});
    clustering.assignments.push_back(0);
  }
  for (int i = 0; i < 10; ++i) {
    points.push_back({gap + 0.5 * rng.Normal()});
    clustering.assignments.push_back(1);
  }
  auto score = SilhouetteScore(DistancesFor(points), clustering);
  ASSERT_TRUE(score.ok());
  // With gap >= 3 the clustering is real; silhouette should reflect it.
  if (gap >= 3.0) {
    EXPECT_GT(*score, 0.5);
  }
  if (gap >= 8.0) {
    EXPECT_GT(*score, 0.8);
  }
}

INSTANTIATE_TEST_SUITE_P(Gaps, SilhouetteSeparationTest,
                         testing::Values(3.0, 5.0, 8.0, 12.0));

}  // namespace
}  // namespace tps
