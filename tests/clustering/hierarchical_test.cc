#include "clustering/hierarchical.h"

#include <gtest/gtest.h>

#include "clustering/distance.h"
#include "util/rng.h"

namespace tps {
namespace {

/// Distance matrix for two tight pairs far from each other:
/// items {0,1} and {2,3}.
Matrix TwoPairDistances() {
  auto m = *Matrix::FromRows({{0.0, 0.1, 5.0, 5.1},
                              {0.1, 0.0, 5.2, 5.0},
                              {5.0, 5.2, 0.0, 0.2},
                              {5.1, 5.0, 0.2, 0.0}});
  return m;
}

TEST(HierarchicalTest, MergesToRequestedClusterCount) {
  HierarchicalOptions options;
  options.num_clusters = 2;
  auto result = HierarchicalCluster(TwoPairDistances(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.num_clusters, 2);
  EXPECT_EQ(result->clustering.assignments[0],
            result->clustering.assignments[1]);
  EXPECT_EQ(result->clustering.assignments[2],
            result->clustering.assignments[3]);
  EXPECT_NE(result->clustering.assignments[0],
            result->clustering.assignments[2]);
}

TEST(HierarchicalTest, ThresholdStopsEarly) {
  HierarchicalOptions options;
  options.distance_threshold = 1.0;  // Pairs merge (0.1, 0.2) but not across.
  auto result = HierarchicalCluster(TwoPairDistances(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.num_clusters, 2);
  EXPECT_EQ(result->merges.size(), 2u);
}

TEST(HierarchicalTest, TinyThresholdKeepsAllSingletons) {
  HierarchicalOptions options;
  options.distance_threshold = 0.01;
  auto result = HierarchicalCluster(TwoPairDistances(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.num_clusters, 4);
  EXPECT_TRUE(result->merges.empty());
}

TEST(HierarchicalTest, MergeHistoryRecordsDistances) {
  HierarchicalOptions options;
  options.num_clusters = 1;
  auto result = HierarchicalCluster(TwoPairDistances(), options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->merges.size(), 3u);
  // Merge distances are non-decreasing for average linkage on this data.
  EXPECT_LE(result->merges[0].distance, result->merges[1].distance);
  EXPECT_LE(result->merges[1].distance, result->merges[2].distance);
  EXPECT_NEAR(result->merges[0].distance, 0.1, 1e-12);
}

TEST(HierarchicalTest, SingleLinkageChains) {
  // A chain 0-1-2 with short consecutive links but long 0-2 distance:
  // single linkage merges the chain before complete linkage would.
  auto chain = *Matrix::FromRows(
      {{0.0, 1.0, 3.0}, {1.0, 0.0, 1.1}, {3.0, 1.1, 0.0}});
  HierarchicalOptions single;
  single.linkage = Linkage::kSingle;
  single.distance_threshold = 1.5;
  auto single_result = HierarchicalCluster(chain, single);
  ASSERT_TRUE(single_result.ok());
  EXPECT_EQ(single_result->clustering.num_clusters, 1);

  HierarchicalOptions complete;
  complete.linkage = Linkage::kComplete;
  complete.distance_threshold = 1.5;
  auto complete_result = HierarchicalCluster(chain, complete);
  ASSERT_TRUE(complete_result.ok());
  EXPECT_EQ(complete_result->clustering.num_clusters, 2);
}

TEST(HierarchicalTest, AverageLinkageIsBetweenSingleAndComplete) {
  Rng rng(12);
  const size_t n = 12;
  Matrix d(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double v = rng.Uniform(0.1, 2.0);
      d.At(i, j) = v;
      d.At(j, i) = v;
    }
  }
  auto clusters_at = [&](Linkage linkage) {
    HierarchicalOptions options;
    options.linkage = linkage;
    options.distance_threshold = 0.9;
    return HierarchicalCluster(d, options)->clustering.num_clusters;
  };
  const int single = clusters_at(Linkage::kSingle);
  const int average = clusters_at(Linkage::kAverage);
  const int complete = clusters_at(Linkage::kComplete);
  EXPECT_LE(single, average);
  EXPECT_LE(average, complete);
}

TEST(HierarchicalTest, SingleItemIsOneCluster) {
  Matrix d(1, 1, 0.0);
  HierarchicalOptions options;
  options.num_clusters = 1;
  auto result = HierarchicalCluster(d, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.num_clusters, 1);
}

TEST(HierarchicalTest, InputValidation) {
  HierarchicalOptions options;
  options.num_clusters = 1;
  EXPECT_TRUE(
      HierarchicalCluster(Matrix(2, 3), options).status().IsInvalidArgument());
  auto asym = *Matrix::FromRows({{0.0, 1.0}, {2.0, 0.0}});
  EXPECT_TRUE(
      HierarchicalCluster(asym, options).status().IsInvalidArgument());
  options.num_clusters = 10;
  EXPECT_TRUE(HierarchicalCluster(TwoPairDistances(), options)
                  .status()
                  .IsInvalidArgument());
  options.num_clusters = 0;
  options.distance_threshold = 0.0;  // Neither stopping rule set.
  EXPECT_TRUE(HierarchicalCluster(TwoPairDistances(), options)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace tps
