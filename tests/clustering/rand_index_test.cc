#include "clustering/rand_index.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tps {
namespace {

ClusteringResult MakeClustering(std::vector<int> assignments, int k) {
  ClusteringResult c;
  c.assignments = std::move(assignments);
  c.num_clusters = k;
  return c;
}

TEST(RandIndexTest, IdenticalPartitionsScoreOne) {
  const auto a = MakeClustering({0, 0, 1, 1, 2}, 3);
  EXPECT_DOUBLE_EQ(*RandIndex(a, a), 1.0);
  EXPECT_DOUBLE_EQ(*AdjustedRandIndex(a, a), 1.0);
}

TEST(RandIndexTest, RelabelledPartitionsScoreOne) {
  const auto a = MakeClustering({0, 0, 1, 1}, 2);
  const auto b = MakeClustering({1, 1, 0, 0}, 2);
  EXPECT_DOUBLE_EQ(*RandIndex(a, b), 1.0);
  EXPECT_DOUBLE_EQ(*AdjustedRandIndex(a, b), 1.0);
}

TEST(RandIndexTest, HandComputedDisagreement) {
  // Items: {0,1} together in a; in b, 1 moves in with {2,3}.
  const auto a = MakeClustering({0, 0, 1, 1}, 2);
  const auto b = MakeClustering({0, 1, 1, 1}, 2);
  // Pairs: (0,1): together/apart -> disagree. (0,2): apart/apart -> agree.
  // (0,3): apart/apart -> agree. (1,2): apart/together -> disagree.
  // (1,3): apart/together -> disagree. (2,3): together/together -> agree.
  EXPECT_DOUBLE_EQ(*RandIndex(a, b), 3.0 / 6.0);
}

TEST(RandIndexTest, IndependentRandomPartitionsHaveLowAdjustedIndex) {
  Rng rng(3);
  ClusteringResult a, b;
  a.num_clusters = b.num_clusters = 4;
  for (int i = 0; i < 200; ++i) {
    a.assignments.push_back(static_cast<int>(rng.UniformInt(uint64_t{4})));
    b.assignments.push_back(static_cast<int>(rng.UniformInt(uint64_t{4})));
  }
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ari.ok());
  EXPECT_NEAR(*ari, 0.0, 0.07);
  // Plain Rand index is inflated by chance, hence the adjustment.
  EXPECT_GT(*RandIndex(a, b), 0.5);
}

TEST(RandIndexTest, AdjustedIndexRewardsPartialAgreement) {
  const auto truth = MakeClustering({0, 0, 0, 1, 1, 1, 2, 2, 2}, 3);
  const auto close = MakeClustering({0, 0, 0, 1, 1, 1, 2, 2, 1}, 3);
  const auto far = MakeClustering({0, 1, 2, 0, 1, 2, 0, 1, 2}, 3);
  EXPECT_GT(*AdjustedRandIndex(truth, close),
            *AdjustedRandIndex(truth, far));
  EXPECT_GT(*AdjustedRandIndex(truth, close), 0.5);
}

TEST(RandIndexTest, InputValidation) {
  const auto a = MakeClustering({0, 1}, 2);
  const auto b = MakeClustering({0, 1, 0}, 2);
  EXPECT_TRUE(RandIndex(a, b).status().IsInvalidArgument());
  EXPECT_TRUE(AdjustedRandIndex(a, b).status().IsInvalidArgument());
  const auto tiny = MakeClustering({0}, 1);
  EXPECT_TRUE(RandIndex(tiny, tiny).status().IsInvalidArgument());
  const auto bad = MakeClustering({0, 9}, 2);
  EXPECT_TRUE(AdjustedRandIndex(bad, a).status().IsOutOfRange());
}

}  // namespace
}  // namespace tps
