// Property test across the full stack: for synthetic zoos with planted
// lineage structure, Eq. 1 + hierarchical clustering over the performance
// matrix recovers the planted groups far above chance. This is the load-
// bearing claim behind the coarse-recall phase.

#include <gtest/gtest.h>

#include "clustering/rand_index.h"
#include "core/model_clusterer.h"
#include "data/registry.h"
#include "model/zoo.h"
#include "sim/finetune_simulator.h"

namespace tps {
namespace {

/// Builds a zoo of `groups` lineages x `per_group` models: same family,
/// same fine-tune tags within a lineage.
std::vector<ModelSpec> LineageZoo(int groups, int per_group, uint64_t seed) {
  const std::vector<std::vector<std::string>> finetunes = {
      {"english", "nli"},          {"english", "sentiment"},
      {"english", "paraphrase"},   {"english", "topic"},
      {"english", "questions"},    {"multilingual", "nli"},
      {"english", "finance"},      {"english", "grammar"}};
  const std::vector<std::string> families = {"bert", "roberta", "albert",
                                             "electra"};
  std::vector<ModelSpec> specs;
  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < per_group; ++i) {
      ModelSpec spec;
      spec.name = std::string("lineage") + std::to_string(seed) + "/g" +
                  std::to_string(g) + std::string("-m") + std::to_string(i);
      spec.domain = TaskDomain::kNLP;
      spec.family = families[static_cast<size_t>(g) % families.size()];
      spec.capability = 0.5 + 0.04 * static_cast<double>(g % 4);
      spec.pretrain_tags = {"english", "books", "wikipedia"};
      spec.finetune_tags = finetunes[static_cast<size_t>(g) %
                                     finetunes.size()];
      spec.num_source_labels = 3;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

class LineageRecoveryTest : public testing::TestWithParam<int> {};

TEST_P(LineageRecoveryTest, HierarchicalClusteringRecoversPlantedLineages) {
  const int groups = GetParam();
  const int per_group = 4;
  auto zoo = *ModelZoo::Create(
      LineageZoo(groups, per_group, static_cast<uint64_t>(groups)));
  auto registry = *DatasetRegistry::CreatePaperInventory();
  FineTuneSimulator simulator;
  auto matrix = *PerformanceMatrix::Build(
      zoo, registry.Benchmarks(TaskDomain::kNLP), simulator,
      Hyperparams::DefaultsFor(TaskDomain::kNLP));

  ModelClusteringOptions options;
  options.num_clusters = groups;  // Cut at the planted granularity.
  auto clustering = *ClusterModels(matrix, zoo, options);

  ClusteringResult planted;
  planted.num_clusters = groups;
  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < per_group; ++i) {
      planted.assignments.push_back(g);
    }
  }
  const double ari =
      *AdjustedRandIndex(planted, clustering.clusters);
  EXPECT_GT(ari, 0.5) << "groups=" << groups;
}

INSTANTIATE_TEST_SUITE_P(GroupCounts, LineageRecoveryTest,
                         testing::Values(2, 3, 4, 6));

TEST(LineageRecoveryTest, KMeansAlsoRecoversButTypicallyNoBetter) {
  // The Table I claim, as a property: hierarchical ARI >= k-means ARI - eps
  // on planted-lineage data.
  const int groups = 4, per_group = 4;
  auto zoo = *ModelZoo::Create(LineageZoo(groups, per_group, 99));
  auto registry = *DatasetRegistry::CreatePaperInventory();
  FineTuneSimulator simulator;
  auto matrix = *PerformanceMatrix::Build(
      zoo, registry.Benchmarks(TaskDomain::kNLP), simulator,
      Hyperparams::DefaultsFor(TaskDomain::kNLP));

  ClusteringResult planted;
  planted.num_clusters = groups;
  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < per_group; ++i) planted.assignments.push_back(g);
  }

  ModelClusteringOptions h_options;
  h_options.num_clusters = groups;
  auto hierarchical = *ClusterModels(matrix, zoo, h_options);
  ModelClusteringOptions k_options = h_options;
  k_options.algorithm = ClusterAlgorithm::kKMeans;
  auto kmeans = *ClusterModels(matrix, zoo, k_options);

  const double h_ari = *AdjustedRandIndex(planted, hierarchical.clusters);
  const double k_ari = *AdjustedRandIndex(planted, kmeans.clusters);
  EXPECT_GT(h_ari, 0.6);
  EXPECT_GE(h_ari, k_ari - 0.15);
}

}  // namespace
}  // namespace tps
