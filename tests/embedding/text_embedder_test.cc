#include "embedding/text_embedder.h"

#include <gtest/gtest.h>

#include "matrix/vector_ops.h"

namespace tps {
namespace {

TEST(TextEmbedderTest, TokenizeLowercasesAndSplitsOnNonAlnum) {
  EXPECT_EQ(HashedTextEmbedder::Tokenize("Hello, World-2!"),
            (std::vector<std::string>{"hello", "world", "2"}));
  EXPECT_TRUE(HashedTextEmbedder::Tokenize("...!!!").empty());
  EXPECT_TRUE(HashedTextEmbedder::Tokenize("").empty());
}

TEST(TextEmbedderTest, EmbeddingIsUnitNorm) {
  HashedTextEmbedder embedder;
  const auto v = embedder.Embed("a model card with words");
  EXPECT_EQ(v.size(), embedder.dims());
  EXPECT_NEAR(vec::Norm(v), 1.0, 1e-12);
}

TEST(TextEmbedderTest, EmptyTextIsZeroVector) {
  HashedTextEmbedder embedder;
  EXPECT_DOUBLE_EQ(vec::Norm(embedder.Embed("")), 0.0);
}

TEST(TextEmbedderTest, IdenticalTextsHaveSimilarityOne) {
  HashedTextEmbedder embedder;
  EXPECT_NEAR(embedder.Similarity("bert base uncased", "bert base uncased"),
              1.0, 1e-12);
}

TEST(TextEmbedderTest, CaseAndPunctuationInvariant) {
  HashedTextEmbedder embedder;
  EXPECT_NEAR(embedder.Similarity("BERT-Base, Uncased!", "bert base uncased"),
              1.0, 1e-12);
}

TEST(TextEmbedderTest, OverlapRaisesSimilarity) {
  HashedTextEmbedder embedder(256);
  const double related = embedder.Similarity(
      "bert fine-tuned on qqp paraphrase",
      "roberta fine-tuned on qqp paraphrase");
  const double unrelated = embedder.Similarity(
      "bert fine-tuned on qqp paraphrase",
      "vision transformer for flowers");
  EXPECT_GT(related, unrelated);
  EXPECT_GT(related, 0.4);
}

TEST(TextEmbedderTest, DisjointTokensNearZero) {
  HashedTextEmbedder embedder(512);
  const double sim = embedder.Similarity("alpha beta gamma delta",
                                         "epsilon zeta eta theta");
  EXPECT_LT(std::abs(sim), 0.35);  // Hash collisions allow small overlap.
}

TEST(TextEmbedderTest, RepeatedTokensWeightSubLinearly) {
  HashedTextEmbedder embedder(256);
  const double once = embedder.Similarity("unique common", "common");
  const double many =
      embedder.Similarity("unique common common common common", "common");
  EXPECT_GT(many, once);  // More mass on "common"...
  EXPECT_LT(many, 1.0);   // ...but not total domination.
}

}  // namespace
}  // namespace tps
