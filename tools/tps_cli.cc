// tps_cli — command-line front end for the two-phase model-selection
// library. Mirrors the workflow a model-repository operator runs:
//
//   tps_cli offline  --domain=nlp --matrix=m.txt --clustering=c.txt
//                    [--index[=i.txt]] [--partitions=P]
//                    [--gen=N --gen-seed=S --gen-lineages=L --prefix=gen]
//       Build the offline artifacts (performance matrix + model
//       clustering) for the paper zoo and persist them. --index also
//       builds the sub-linear IVF recall index. --gen=N swaps the paper
//       zoo for a generated zoo of N models (see zoo-gen); generated
//       zoos always get an index, and their serving clustering is derived
//       from the index partitioning (the hierarchical clusterer does not
//       scale to 10k+ models).
//
//   tps_cli zoo-gen  --domain=nlp --count=1000 [--seed=17] [--lineages=0]
//                    [--singleton-frac=0.05] [--jitter=0.02]
//                    [--prefix=gen] [--store=store.log] [--sample=10]
//       Generate a parameterized large model zoo (lineage-correlated,
//       seeded, deterministic), print a sample, and optionally register
//       every spec in a model store.
//
//   tps_cli recall   --domain=nlp --matrix=m.txt --clustering=c.txt ...
//                    --target=mnli [--k=10] [--proxy=leep | --proxies=a,b]
//                    [--index=i.txt|store [--nprobe=N]]
//       Load the artifacts and print the coarse-recall ranking for a
//       target dataset. --index routes recall through the IVF index
//       (--index=store loads it from the --store artifact id).
//
//   tps_cli select   --domain=nlp --matrix=m.txt --clustering=c.txt ...
//                    --target=mnli [--k=10] [--threshold=0.0]
//                    [--repeat=N] [--targets=a,b,c] [--cache=4096]
//                    [--deadline=MS] [--backend=representative|embedding|
//                    hybrid] [--embeddings=e.txt]
//       Run the full two-phase selection and print the report. Runs
//       through an in-process SelectionService, so artifacts are loaded
//       once and --repeat / --targets reuse them (and the proxy-score
//       cache) across requests. --backend routes recall phase 1 through a
//       named RecallBackend (embedding/hybrid need trained embeddings from
//       `train-embed`, via the --store or --embeddings=PATH).
//
//   tps_cli train-embed --domain=nlp --matrix=m.txt | --store=store.log
//                    [--dim=16] [--epochs=300] [--lr=0.5]
//                    [--temperature=0.2] [--acc-temperature=0.05]
//                    [--seed=7] [--threads=1] [--out=e.txt]
//       Train the two-tower recall embeddings from the offline performance
//       matrix (full-batch GD, in-batch softmax negatives; deterministic
//       for any --threads). Persists into the --store under the artifact
//       id and/or to --out as a plain file, and prints the loss curve
//       endpoints.
//
//   tps_cli baselines --domain=nlp --target=mnli
//       Compare brute force / successive halving / fine-selection /
//       two-phase on one target (fresh offline build).
//
//   tps_cli datasets --domain=nlp | models --domain=cv | card --model=NAME
//       Inventory inspection.
//
//   tps_cli store-info --store=store.log
//       Open a model store, print per-namespace entry counts and the
//       recovery stats (records replayed, torn-tail bytes truncated).
//
//   tps_cli store-compact --store=store.log
//       Compact a model store's log (drop overwritten/deleted records)
//       and print the log size before/after plus recovery stats.
//
//   tps_cli trace    --domain=nlp --matrix=m.txt --clustering=c.txt ...
//                    --target=mnli [--k=10] [--threshold=0.0] [--out=t.json]
//       Run the full two-phase selection and emit the structured
//       SelectionTrace as JSON (per-cluster recall scores, recalled set,
//       every rung's survivors and prunes, epoch totals) to stdout or
//       --out. `select` also accepts --trace=PATH to write the same JSON
//       alongside its human-readable report.
//
//   tps_cli serve    --domain=nlp --store=store.log
//                    --socket=/tmp/tps.sock | --port=0 [--workers=2]
//                    [--queue=64] [--threads=1] [--cache=4096]
//                    [--deadline=MS]
//       Load the artifacts once and answer NDJSON selection requests over
//       a Unix/TCP socket until a client sends {"cmd":"shutdown"}. Same as
//       the standalone `tps_serve` binary.
//
//   tps_cli query    --socket=/tmp/tps.sock | --port=N --target=mnli
//                    [--cmd=select|ping|stats|reload|shutdown] [--k]
//                    [--threshold] [--proxy|--proxies] [--deadline=MS]
//                    [--trace]
//       Send one request to a running server and print the raw NDJSON
//       reply. Exit 0 iff the reply says "ok": true.
//
//   tps_cli reload   --socket=/tmp/tps.sock | --port=N
//                    --store=store.log [--id=nlp] |
//                    --matrix=PATH --clustering=PATH
//       Hot-swap a running server onto new artifacts with zero downtime:
//       the server loads + validates the named artifacts off the serving
//       path and publishes them as the next artifact version. In-flight
//       requests finish on the version that admitted them. Shorthand for
//       `tps_cli query --cmd=reload`.
//
// All subcommands are deterministic; no flags are required beyond the ones
// shown (defaults in brackets). `offline`, `recall` and `select` accept
// --threads=N (default 1) to fan independent simulator/proxy work over a
// shared thread pool — output is bit-identical for every thread count.
//
// Any invocation additionally accepts --metrics[=PATH]: after the
// subcommand finishes, the process-wide MetricsRegistry (counters, gauges,
// latency histograms — see "Observability" in DESIGN.md) is dumped as JSON
// to stdout or PATH. Observability never changes results or exit codes of
// a successful command.

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/report.h"
#include "core/two_phase.h"
#include "data/registry.h"
#include "index/ivf_index.h"
#include "model/model_card.h"
#include "model/paper_zoo.h"
#include "model/zoo_gen.h"
#include "recall/embed_trainer.h"
#include "recall/recall_embeddings.h"
#include "serve/cli_commands.h"
#include "store/model_store.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace tps {
namespace cli {
namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << std::endl;
  return 1;
}

int Usage() {
  std::cerr
      << "usage: tps_cli <offline|zoo-gen|recall|select|trace|train-embed|"
         "baselines|datasets|models|card|store-info|store-compact|serve|"
         "query|reload> [--flags] [--metrics[=PATH]]\n"
         "run `head tools/tps_cli.cc` for the full flag reference\n";
  return 2;
}

/// Writes `text` to `path`, or to stdout when `path` is empty.
int EmitText(const std::string& text, const std::string& path,
             const char* what) {
  if (path.empty()) {
    std::cout << text << "\n";
    return 0;
  }
  std::ofstream out(path);
  if (out) out << text << "\n";
  if (!out) {
    return Fail(Status::IOError(std::string("cannot write ") + what + ": " +
                                path));
  }
  std::cout << what << " -> " << path << "\n";
  return 0;
}

StatusOr<int> ThreadsFromFlag(const FlagParser& flags) {
  TPS_ASSIGN_OR_RETURN(int64_t threads, flags.GetInt("threads", 1));
  if (threads < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  return static_cast<int>(threads);
}

StatusOr<TaskDomain> DomainFromFlag(const FlagParser& flags) {
  const std::string domain = strings::ToLower(
      flags.GetString("domain", "nlp"));
  if (domain == "nlp") return TaskDomain::kNLP;
  if (domain == "cv") return TaskDomain::kCV;
  return Status::InvalidArgument("--domain must be nlp or cv, got '" +
                                 domain + "'");
}

StatusOr<ModelZoo> ZooFor(TaskDomain domain) {
  return ModelZoo::Create(domain == TaskDomain::kNLP ? NlpPaperZooSpecs()
                                                     : CvPaperZooSpecs());
}

struct LoadedWorld {
  DatasetRegistry registry;
  ModelZoo zoo;
  PerformanceMatrix matrix;
  ModelClustering clustering;
  TaskDomain domain;
};

/// Loads previously persisted offline artifacts and validates they match
/// the paper zoo for the domain.
StatusOr<LoadedWorld> LoadWorld(const FlagParser& flags) {
  TPS_ASSIGN_OR_RETURN(TaskDomain domain, DomainFromFlag(flags));
  TPS_ASSIGN_OR_RETURN(DatasetRegistry registry,
                       DatasetRegistry::CreatePaperInventory());
  TPS_ASSIGN_OR_RETURN(ModelZoo zoo, ZooFor(domain));

  // Artifacts come either from a model store (--store + --id) or from the
  // plain-file pair (--matrix + --clustering).
  const std::string store_path = flags.GetString("store");
  auto load_matrix = [&]() -> StatusOr<PerformanceMatrix> {
    if (!store_path.empty()) {
      const std::string id =
          flags.GetString("id", domain == TaskDomain::kNLP ? "nlp" : "cv");
      TPS_ASSIGN_OR_RETURN(ModelStore store, ModelStore::Open(store_path));
      return store.GetPerformanceMatrix(id);
    }
    const std::string matrix_path = flags.GetString("matrix");
    if (matrix_path.empty()) {
      return Status::InvalidArgument(
          "--store or --matrix/--clustering paths are required (run "
          "`tps_cli offline` first)");
    }
    return PerformanceMatrix::LoadFromFile(matrix_path);
  };
  auto load_clustering = [&]() -> StatusOr<ModelClustering> {
    if (!store_path.empty()) {
      const std::string id =
          flags.GetString("id", domain == TaskDomain::kNLP ? "nlp" : "cv");
      TPS_ASSIGN_OR_RETURN(ModelStore store, ModelStore::Open(store_path));
      return store.GetClustering(id);
    }
    const std::string clustering_path = flags.GetString("clustering");
    if (clustering_path.empty()) {
      return Status::InvalidArgument(
          "--store or --matrix/--clustering paths are required (run "
          "`tps_cli offline` first)");
    }
    return LoadClustering(clustering_path);
  };
  TPS_ASSIGN_OR_RETURN(PerformanceMatrix matrix, load_matrix());
  TPS_ASSIGN_OR_RETURN(ModelClustering clustering, load_clustering());
  // Artifacts over a generated zoo (`tps_cli offline --gen=N`): rebuild
  // the zoo from the store's registered specs, in matrix column order.
  if (matrix.num_models() != zoo.size() && !store_path.empty()) {
    TPS_ASSIGN_OR_RETURN(ModelStore store, ModelStore::Open(store_path));
    std::vector<ModelSpec> specs;
    specs.reserve(matrix.num_models());
    for (const std::string& name : matrix.model_names()) {
      auto spec = store.GetModelSpec(name);
      if (!spec.ok()) {
        return Status(spec.status().code(),
                      "matrix model '" + name +
                          "' is not registered in the store: " +
                          spec.status().message());
      }
      specs.push_back(std::move(spec).value());
    }
    TPS_ASSIGN_OR_RETURN(zoo, ModelZoo::Create(specs));
  }
  if (matrix.num_models() != zoo.size() ||
      clustering.clusters.assignments.size() != zoo.size()) {
    return Status::FailedPrecondition(
        "artifacts do not match the " + std::string(ToString(domain)) +
        " paper zoo; rebuild with `tps_cli offline`");
  }
  return LoadedWorld{std::move(registry), std::move(zoo), std::move(matrix),
                     std::move(clustering), domain};
}

int RunOffline(const FlagParser& flags) {
  auto domain_or = DomainFromFlag(flags);
  if (!domain_or.ok()) return Fail(domain_or.status());
  const TaskDomain domain = *domain_or;
  const std::string matrix_path =
      flags.GetString("matrix", "tps_matrix.txt");
  const std::string clustering_path =
      flags.GetString("clustering", "tps_clustering.txt");

  auto registry_or = DatasetRegistry::CreatePaperInventory();
  if (!registry_or.ok()) return Fail(registry_or.status());

  // Zoo: the paper zoo, or a generated one when --gen=N is given.
  auto gen_or = flags.GetInt("gen", 0);
  if (!gen_or.ok()) return Fail(gen_or.status());
  if (*gen_or < 0) {
    return Fail(Status::InvalidArgument("--gen must be >= 0"));
  }
  const size_t gen_count = static_cast<size_t>(*gen_or);
  StatusOr<ModelZoo> zoo_or = Status::Internal("unreachable");
  if (gen_count > 0) {
    ZooGenSpec gen_spec;
    gen_spec.domain = domain;
    gen_spec.num_models = gen_count;
    auto seed_or = flags.GetInt(
        "gen-seed", static_cast<int64_t>(gen_spec.seed));
    if (!seed_or.ok()) return Fail(seed_or.status());
    gen_spec.seed = static_cast<uint64_t>(*seed_or);
    auto lineages_or = flags.GetInt("gen-lineages", 0);
    if (!lineages_or.ok()) return Fail(lineages_or.status());
    if (*lineages_or < 0) {
      return Fail(Status::InvalidArgument("--gen-lineages must be >= 0"));
    }
    gen_spec.num_lineages = static_cast<size_t>(*lineages_or);
    gen_spec.name_prefix = flags.GetString("prefix", "gen");
    auto specs_or = GenerateZooSpecs(gen_spec);
    if (!specs_or.ok()) return Fail(specs_or.status());
    zoo_or = ModelZoo::Create(*specs_or);
  } else {
    zoo_or = ZooFor(domain);
  }
  if (!zoo_or.ok()) return Fail(zoo_or.status());

  auto threads_or = ThreadsFromFlag(flags);
  if (!threads_or.ok()) return Fail(threads_or.status());

  FineTuneSimulator simulator;
  auto matrix_or = PerformanceMatrix::BuildParallel(
      *zoo_or, registry_or->Benchmarks(domain), simulator,
      Hyperparams::DefaultsFor(domain), *threads_or);
  if (!matrix_or.ok()) return Fail(matrix_or.status());

  // Recall index: always built for a generated zoo (its serving
  // clustering derives from the index partitioning — the hierarchical
  // clusterer is O(n^3) and does not scale there); opt-in via --index
  // for the paper zoo.
  const bool build_index = gen_count > 0 || flags.Has("index");
  std::optional<IvfIndex> index;
  if (build_index) {
    IvfIndexOptions index_options;
    auto partitions_or = flags.GetInt("partitions", 0);
    if (!partitions_or.ok()) return Fail(partitions_or.status());
    index_options.num_partitions = static_cast<int>(*partitions_or);
    auto index_or = IvfIndex::Build(matrix_or->ModelVectors(),
                                    matrix_or->ModelAverageAccuracies(),
                                    index_options);
    if (!index_or.ok()) return Fail(index_or.status());
    index = std::move(index_or).value();
  }

  StatusOr<ModelClustering> clustering_or = Status::Internal("unreachable");
  if (gen_count > 0) {
    clustering_or = ClusteringFromIndexStructure(index->structure());
  } else {
    ModelClusteringOptions options;
    auto threshold_or =
        flags.GetDouble("threshold", options.distance_threshold);
    if (!threshold_or.ok()) return Fail(threshold_or.status());
    options.distance_threshold = *threshold_or;
    auto topk_or =
        flags.GetInt("topk", static_cast<int64_t>(options.top_k));
    if (!topk_or.ok()) return Fail(topk_or.status());
    options.top_k = static_cast<size_t>(*topk_or);
    clustering_or = ClusterModels(*matrix_or, *zoo_or, options);
  }
  if (!clustering_or.ok()) return Fail(clustering_or.status());

  // Optionally also register everything in a model store.
  const std::string store_path = flags.GetString("store");
  if (!store_path.empty()) {
    const std::string id =
        flags.GetString("id", domain == TaskDomain::kNLP ? "nlp" : "cv");
    auto store_or = ModelStore::Open(store_path);
    if (!store_or.ok()) return Fail(store_or.status());
    ModelStore store = std::move(store_or).value();
    for (const PretrainedModel& model : zoo_or->models()) {
      Status put = store.PutModelSpec(model.spec());
      if (!put.ok()) return Fail(put);
    }
    for (const Dataset& dataset : registry_or->datasets()) {
      if (dataset.spec().domain != domain) continue;
      Status put = store.PutDatasetSpec(dataset.spec());
      if (!put.ok()) return Fail(put);
    }
    Status put = store.PutPerformanceMatrix(id, *matrix_or);
    if (!put.ok()) return Fail(put);
    put = store.PutClustering(id, *clustering_or);
    if (!put.ok()) return Fail(put);
    if (index.has_value()) {
      put = store.PutRecallIndex(id, *index);
      if (!put.ok()) return Fail(put);
    }
    std::cout << "model store -> " << store_path << " (id " << id << ", "
              << store.size() << " entries)\n";
  }

  Status save = matrix_or->SaveToFile(matrix_path);
  if (!save.ok()) return Fail(save);
  save = SaveClustering(*clustering_or, clustering_path);
  if (!save.ok()) return Fail(save);

  std::cout << "offline artifacts for " << ToString(domain) << ": "
            << matrix_or->num_models() << " models x "
            << matrix_or->num_datasets() << " benchmarks\n"
            << "  performance matrix -> " << matrix_path << "\n"
            << "  model clustering   -> " << clustering_path << " ("
            << clustering_or->NonSingletonClusters().size()
            << " non-singleton clusters)\n";
  if (index.has_value()) {
    std::string index_path = flags.GetString("index");
    if (index_path.empty()) index_path = "tps_index.txt";
    save = index->SaveToFile(index_path);
    if (!save.ok()) return Fail(save);
    std::cout << "  recall index       -> " << index_path << " ("
              << index->num_partitions() << " partitions, default nprobe "
              << index->default_nprobe() << ")\n";
  }
  return 0;
}

int RunZooGen(const FlagParser& flags) {
  auto domain_or = DomainFromFlag(flags);
  if (!domain_or.ok()) return Fail(domain_or.status());
  ZooGenSpec spec;
  spec.domain = *domain_or;
  auto count_or =
      flags.GetInt("count", static_cast<int64_t>(spec.num_models));
  if (!count_or.ok()) return Fail(count_or.status());
  if (*count_or < 1) {
    return Fail(Status::InvalidArgument("--count must be >= 1"));
  }
  spec.num_models = static_cast<size_t>(*count_or);
  auto seed_or = flags.GetInt("seed", static_cast<int64_t>(spec.seed));
  if (!seed_or.ok()) return Fail(seed_or.status());
  spec.seed = static_cast<uint64_t>(*seed_or);
  auto lineages_or = flags.GetInt("lineages", 0);
  if (!lineages_or.ok()) return Fail(lineages_or.status());
  if (*lineages_or < 0) {
    return Fail(Status::InvalidArgument("--lineages must be >= 0"));
  }
  spec.num_lineages = static_cast<size_t>(*lineages_or);
  auto frac_or =
      flags.GetDouble("singleton-frac", spec.singleton_fraction);
  if (!frac_or.ok()) return Fail(frac_or.status());
  spec.singleton_fraction = *frac_or;
  auto jitter_or = flags.GetDouble("jitter", spec.capability_jitter);
  if (!jitter_or.ok()) return Fail(jitter_or.status());
  spec.capability_jitter = *jitter_or;
  spec.name_prefix = flags.GetString("prefix", spec.name_prefix);

  auto specs_or = GenerateZooSpecs(spec);
  if (!specs_or.ok()) return Fail(specs_or.status());
  const std::vector<ModelSpec>& specs = *specs_or;

  const std::string store_path = flags.GetString("store");
  if (!store_path.empty()) {
    auto store_or = ModelStore::Open(store_path);
    if (!store_or.ok()) return Fail(store_or.status());
    ModelStore store = std::move(store_or).value();
    for (const ModelSpec& model : specs) {
      Status put = store.PutModelSpec(model);
      if (!put.ok()) return Fail(put);
    }
    std::cout << "model store -> " << store_path << " (" << store.size()
              << " entries)\n";
  }

  auto sample_or = flags.GetInt("sample", 10);
  if (!sample_or.ok()) return Fail(sample_or.status());
  if (*sample_or < 0) {
    return Fail(Status::InvalidArgument("--sample must be >= 0"));
  }
  const size_t sample = static_cast<size_t>(*sample_or);
  if (sample > 0) {
    TablePrinter table({"model", "family", "params (M)", "capability",
                        "fine-tune tags"});
    for (size_t i = 0; i < sample && i < specs.size(); ++i) {
      const ModelSpec& model = specs[i];
      table.AddRow({model.name, model.family,
                    strings::FormatDouble(model.scale_millions, 0),
                    strings::FormatDouble(model.capability, 3),
                    strings::Join(model.finetune_tags, " ")});
    }
    table.Print(std::cout);
  }
  std::cout << "generated " << specs.size() << " "
            << ToString(spec.domain) << " models (seed " << spec.seed
            << ", prefix '" << spec.name_prefix << "')\n";
  return 0;
}

int RunRecall(const FlagParser& flags) {
  auto world_or = LoadWorld(flags);
  if (!world_or.ok()) return Fail(world_or.status());
  LoadedWorld& world = *world_or;
  const std::string target_name = flags.GetString("target");
  auto target_or = world.registry.Find(target_name);
  if (!target_or.ok()) return Fail(target_or.status());

  RecallOptions options;
  auto k_or = flags.GetInt("k", 10);
  if (!k_or.ok()) return Fail(k_or.status());
  options.top_k_models = static_cast<size_t>(*k_or);
  options.proxy = flags.GetString("proxy", "leep");
  options.proxies = flags.GetList("proxies");

  // --index=PATH loads a serialized IvfIndex; --index=store fetches it
  // from the --store under the artifact id. Either way recall runs the
  // sub-linear indexed path instead of the legacy clustering sweep.
  std::optional<IvfIndex> index;
  const std::string index_flag = flags.GetString("index");
  if (!index_flag.empty()) {
    StatusOr<IvfIndex> index_or = Status::Internal("unreachable");
    if (index_flag == "store") {
      const std::string store_path = flags.GetString("store");
      if (store_path.empty()) {
        return Fail(Status::InvalidArgument(
            "--index=store needs --store=PATH"));
      }
      auto store_or = ModelStore::Open(store_path);
      if (!store_or.ok()) return Fail(store_or.status());
      const std::string id = flags.GetString(
          "id", world.domain == TaskDomain::kNLP ? "nlp" : "cv");
      index_or = store_or->GetRecallIndex(id);
    } else {
      index_or = IvfIndex::LoadFromFile(index_flag);
    }
    if (!index_or.ok()) return Fail(index_or.status());
    index = std::move(index_or).value();
    options.index = &*index;
    auto nprobe_or = flags.GetInt("nprobe", 0);
    if (!nprobe_or.ok()) return Fail(nprobe_or.status());
    if (*nprobe_or < 0) {
      return Fail(Status::InvalidArgument("--nprobe must be >= 0"));
    }
    options.nprobe = static_cast<size_t>(*nprobe_or);
  }

  auto threads_or = ThreadsFromFlag(flags);
  if (!threads_or.ok()) return Fail(threads_or.status());

  CoarseRecall recall(&world.zoo, &world.matrix, &world.clustering);
  EpochBudget budget;
  StatusOr<RecallResult> result_or = Status::Internal("unreachable");
  if (*threads_or == 1) {
    result_or = recall.Recall(**target_or, options, &budget);
  } else {
    ThreadPool pool(ThreadPool::ClampThreads(*threads_or, world.zoo.size()));
    result_or = recall.Recall(**target_or, options, &budget, &pool);
  }
  if (!result_or.ok()) return Fail(result_or.status());

  TablePrinter table({"rank", "model", "recall score", "prior acc",
                      "proxy", "propagated"});
  for (size_t r = 0; r < options.top_k_models &&
                     r < result_or->ranked.size();
       ++r) {
    const RecallEntry& entry = result_or->ranked[r];
    table.AddRow({std::to_string(r),
                  world.zoo.model(entry.model_index).name(),
                  strings::FormatDouble(entry.recall_score, 4),
                  strings::FormatDouble(entry.prior_accuracy, 4),
                  strings::FormatDouble(entry.proxy_component, 4),
                  entry.via_propagation ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::cout << "proxy inference cost: " << budget.inference_epochs()
            << " epoch-equivalents (" << result_or->proxies_computed
            << " forward passes)\n";
  if (index.has_value()) {
    std::cout << "recall index: " << index->name() << ", probed "
              << index->ProbePartitions(options.nprobe).size() << " of "
              << index->num_partitions() << " partitions\n";
  }
  return 0;
}

/// Parses the flags shared by `select` and `trace` (--k, --threshold,
/// --threads).
StatusOr<TwoPhaseOptions> TwoPhaseOptionsFromFlags(const FlagParser& flags) {
  TwoPhaseOptions options;
  TPS_ASSIGN_OR_RETURN(int64_t k, flags.GetInt("k", 10));
  options.recall.top_k_models = static_cast<size_t>(k);
  TPS_ASSIGN_OR_RETURN(options.fine_selection.threshold,
                       flags.GetDouble("threshold", 0.0));
  TPS_ASSIGN_OR_RETURN(options.num_threads, ThreadsFromFlag(flags));
  return options;
}

int RunSelect(const FlagParser& flags) {
  // Routed through an in-process SelectionService: artifacts load once and
  // every request in this process (--repeat x --targets) reuses them plus
  // the shared proxy-score cache.
  auto paths_or = serve::ArtifactPathsFromFlags(flags);
  if (!paths_or.ok()) return Fail(paths_or.status());
  auto artifacts_or = serve::ServiceArtifacts::Load(*paths_or);
  if (!artifacts_or.ok()) return Fail(artifacts_or.status());

  serve::ServiceOptions service_options;
  service_options.worker_threads = 0;  // Handle() runs on this thread.
  auto threads_or = ThreadsFromFlag(flags);
  if (!threads_or.ok()) return Fail(threads_or.status());
  service_options.pipeline_threads = *threads_or;
  auto cache_or = flags.GetInt(
      "cache", static_cast<int64_t>(service_options.cache_capacity));
  if (!cache_or.ok()) return Fail(cache_or.status());
  if (*cache_or < 0) {
    return Fail(Status::InvalidArgument("--cache must be >= 0"));
  }
  service_options.cache_capacity = static_cast<size_t>(*cache_or);
  auto deadline_or = flags.GetDouble("deadline", 0.0);
  if (!deadline_or.ok()) return Fail(deadline_or.status());
  if (*deadline_or < 0.0) {
    return Fail(Status::InvalidArgument("--deadline must be >= 0"));
  }
  service_options.default_deadline_ms = *deadline_or;

  auto service_or = serve::SelectionService::Create(std::move(*artifacts_or),
                                                    service_options);
  if (!service_or.ok()) return Fail(service_or.status());
  serve::SelectionService& service = **service_or;

  std::vector<std::string> targets = flags.GetList("targets");
  if (targets.empty()) {
    const std::string target = flags.GetString("target");
    if (target.empty()) {
      return Fail(
          Status::InvalidArgument("--target or --targets is required"));
    }
    targets.push_back(target);
  }
  auto repeat_or = flags.GetInt("repeat", 1);
  if (!repeat_or.ok()) return Fail(repeat_or.status());
  if (*repeat_or < 1) {
    return Fail(Status::InvalidArgument("--repeat must be >= 1"));
  }
  const size_t repeat = static_cast<size_t>(*repeat_or);
  const size_t total = targets.size() * repeat;

  const std::string trace_path = flags.GetString("trace");
  const std::string report_path = flags.GetString("report");
  if (total > 1 && (flags.Has("trace") || !report_path.empty())) {
    return Fail(Status::InvalidArgument(
        "--trace/--report apply to a single request; drop --repeat/"
        "--targets"));
  }

  serve::SelectionRequest request;
  auto k_or = flags.GetInt("k", 10);
  if (!k_or.ok()) return Fail(k_or.status());
  request.top_k = static_cast<size_t>(*k_or);
  auto threshold_or = flags.GetDouble("threshold", 0.0);
  if (!threshold_or.ok()) return Fail(threshold_or.status());
  request.threshold = *threshold_or;
  request.proxy = flags.GetString("proxy", "leep");
  request.proxies = flags.GetList("proxies");
  request.want_trace = flags.Has("trace");
  auto no_index_or = flags.GetBool("no-index", false);
  if (!no_index_or.ok()) return Fail(no_index_or.status());
  request.use_index = !*no_index_or;
  auto nprobe_or = flags.GetInt("nprobe", 0);
  if (!nprobe_or.ok()) return Fail(nprobe_or.status());
  if (*nprobe_or < 0) {
    return Fail(Status::InvalidArgument("--nprobe must be >= 0"));
  }
  request.nprobe = static_cast<size_t>(*nprobe_or);
  request.recall_backend = flags.GetString("backend");

  serve::SelectionResponse response;
  for (size_t run = 0; run < repeat; ++run) {
    for (const std::string& target : targets) {
      request.target = target;
      response = service.Handle(request);
      if (!response.status.ok()) return Fail(response.status);
      if (total > 1) {
        std::cout << "[" << target << " run " << (run + 1) << "/" << repeat
                  << "]\n";
      }
      std::cout << "selected: " << response.selected_model
                << "\naccuracy: " << response.selected_accuracy
                << "\nsurvivors per epoch:";
      for (size_t n : response.survivors_per_stage) {
        std::cout << " " << n;
      }
      std::cout << "\ncost: " << response.total_epochs
                << " epoch-equivalents (" << response.training_epochs
                << " training + " << response.inference_epochs
                << " proxy)\n";
    }
  }
  if (total > 1) {
    const serve::ServiceStats stats = service.Stats();
    std::cout << "served " << total << " requests; proxy cache: "
              << stats.cache_hits << " hits, " << stats.cache_misses
              << " misses, " << stats.cache_evictions << " evictions\n";
  }

  if (!report_path.empty()) {
    const auto snapshot = service.snapshot();
    auto target_or =
        snapshot->artifacts.registry.Find(flags.GetString("target"));
    if (!target_or.ok()) return Fail(target_or.status());
    std::ofstream out(report_path);
    if (!out) {
      return Fail(Status::IOError("cannot write report: " + report_path));
    }
    out << RenderSelectionReport(response.report, snapshot->artifacts.zoo,
                                 **target_or);
    std::cout << "markdown report -> " << report_path << "\n";
  }
  if (request.want_trace) {
    if (trace_path.empty()) {
      return Fail(Status::InvalidArgument(
          "--trace needs a file path (use `tps_cli trace` to print the "
          "trace to stdout)"));
    }
    const int code = EmitText(response.trace.ToJson(2), trace_path,
                              "selection trace");
    if (code != 0) return code;
  }
  return 0;
}

int RunTrace(const FlagParser& flags) {
  auto world_or = LoadWorld(flags);
  if (!world_or.ok()) return Fail(world_or.status());
  LoadedWorld& world = *world_or;
  auto target_or = world.registry.Find(flags.GetString("target"));
  if (!target_or.ok()) return Fail(target_or.status());

  auto options_or = TwoPhaseOptionsFromFlags(flags);
  if (!options_or.ok()) return Fail(options_or.status());
  TwoPhaseOptions options = *options_or;
  SelectionTrace trace;
  options.trace = &trace;

  FineTuneSimulator simulator;
  TwoPhaseSelector selector(&world.zoo, &world.matrix, &world.clustering,
                            &simulator);
  auto report_or = selector.Select(**target_or, options);
  if (!report_or.ok()) return Fail(report_or.status());
  return EmitText(trace.ToJson(2), flags.GetString("out"),
                  "selection trace");
}

int RunTrainEmbed(const FlagParser& flags) {
  auto domain_or = DomainFromFlag(flags);
  if (!domain_or.ok()) return Fail(domain_or.status());
  const TaskDomain domain = *domain_or;
  auto registry_or = DatasetRegistry::CreatePaperInventory();
  if (!registry_or.ok()) return Fail(registry_or.status());

  // Matrix comes from a model store (--store [+ --id]) or a plain file
  // (--matrix), same convention as `recall`/`select`.
  const std::string store_path = flags.GetString("store");
  const std::string id =
      flags.GetString("id", domain == TaskDomain::kNLP ? "nlp" : "cv");
  StatusOr<PerformanceMatrix> matrix_or = Status::Internal("unreachable");
  if (!store_path.empty()) {
    auto store_or = ModelStore::Open(store_path);
    if (!store_or.ok()) return Fail(store_or.status());
    matrix_or = store_or->GetPerformanceMatrix(id);
  } else {
    const std::string matrix_path = flags.GetString("matrix");
    if (matrix_path.empty()) {
      return Fail(Status::InvalidArgument(
          "--store or --matrix is required (run `tps_cli offline` first)"));
    }
    matrix_or = PerformanceMatrix::LoadFromFile(matrix_path);
  }
  if (!matrix_or.ok()) return Fail(matrix_or.status());
  const PerformanceMatrix& matrix = *matrix_or;

  // Benchmarks in matrix row order: the trainer validates names match.
  std::vector<const Dataset*> benchmarks;
  benchmarks.reserve(matrix.num_datasets());
  for (const std::string& name : matrix.dataset_names()) {
    auto dataset_or = registry_or->Find(name);
    if (!dataset_or.ok()) return Fail(dataset_or.status());
    benchmarks.push_back(*dataset_or);
  }

  recall::EmbeddingConfig config;
  auto dim_or = flags.GetInt("dim", static_cast<int64_t>(config.dim));
  if (!dim_or.ok()) return Fail(dim_or.status());
  if (*dim_or < 1) {
    return Fail(Status::InvalidArgument("--dim must be >= 1"));
  }
  config.dim = static_cast<size_t>(*dim_or);
  auto epochs_or =
      flags.GetInt("epochs", static_cast<int64_t>(config.epochs));
  if (!epochs_or.ok()) return Fail(epochs_or.status());
  if (*epochs_or < 1) {
    return Fail(Status::InvalidArgument("--epochs must be >= 1"));
  }
  config.epochs = static_cast<int>(*epochs_or);
  auto lr_or = flags.GetDouble("lr", config.learning_rate);
  if (!lr_or.ok()) return Fail(lr_or.status());
  config.learning_rate = *lr_or;
  auto temp_or = flags.GetDouble("temperature", config.temperature);
  if (!temp_or.ok()) return Fail(temp_or.status());
  config.temperature = *temp_or;
  auto acc_temp_or =
      flags.GetDouble("acc-temperature", config.accuracy_temperature);
  if (!acc_temp_or.ok()) return Fail(acc_temp_or.status());
  config.accuracy_temperature = *acc_temp_or;
  auto seed_or = flags.GetInt("seed", static_cast<int64_t>(config.seed));
  if (!seed_or.ok()) return Fail(seed_or.status());
  config.seed = static_cast<uint64_t>(*seed_or);

  auto threads_or = ThreadsFromFlag(flags);
  if (!threads_or.ok()) return Fail(threads_or.status());

  StatusOr<recall::EmbedTrainingResult> trained_or =
      Status::Internal("unreachable");
  if (*threads_or == 1) {
    trained_or = recall::TrainRecallEmbeddings(matrix, benchmarks, config);
  } else {
    ThreadPool pool(ThreadPool::ClampThreads(*threads_or,
                                             matrix.num_datasets()));
    trained_or =
        recall::TrainRecallEmbeddings(matrix, benchmarks, config, &pool);
  }
  if (!trained_or.ok()) return Fail(trained_or.status());
  const recall::EmbedTrainingResult& trained = *trained_or;

  const std::string out_path = flags.GetString("out");
  if (store_path.empty() && out_path.empty()) {
    return Fail(Status::InvalidArgument(
        "nowhere to persist: pass --store and/or --out=PATH"));
  }
  if (!store_path.empty()) {
    auto store_or = ModelStore::Open(store_path);
    if (!store_or.ok()) return Fail(store_or.status());
    Status put = store_or->PutRecallEmbeddings(id, trained.embeddings);
    if (!put.ok()) return Fail(put);
    std::cout << "recall embeddings -> " << store_path << " (id " << id
              << ")\n";
  }
  if (!out_path.empty()) {
    Status save = trained.embeddings.SaveToFile(out_path);
    if (!save.ok()) return Fail(save);
    std::cout << "recall embeddings -> " << out_path << "\n";
  }
  std::cout << "trained " << trained.embeddings.num_models() << " model"
            << " embeddings (dim " << trained.embeddings.dim() << ") over "
            << matrix.num_datasets() << " benchmarks in " << config.epochs
            << " epochs\n"
            << "loss: " << strings::FormatDouble(
                   trained.epoch_losses.front(), 6)
            << " (init) -> " << strings::FormatDouble(
                   trained.epoch_losses.back(), 6)
            << " (final)\n";
  return 0;
}

int RunBaselines(const FlagParser& flags) {
  auto domain_or = DomainFromFlag(flags);
  if (!domain_or.ok()) return Fail(domain_or.status());
  const TaskDomain domain = *domain_or;
  auto registry_or = DatasetRegistry::CreatePaperInventory();
  if (!registry_or.ok()) return Fail(registry_or.status());
  auto target_or = registry_or->Find(flags.GetString("target"));
  if (!target_or.ok()) return Fail(target_or.status());
  auto zoo_or = ZooFor(domain);
  if (!zoo_or.ok()) return Fail(zoo_or.status());

  FineTuneSimulator simulator;
  const Hyperparams hp = Hyperparams::DefaultsFor(domain);
  auto matrix_or = PerformanceMatrix::Build(
      *zoo_or, registry_or->Benchmarks(domain), simulator, hp);
  if (!matrix_or.ok()) return Fail(matrix_or.status());
  auto clustering_or =
      ClusterModels(*matrix_or, *zoo_or, ModelClusteringOptions());
  if (!clustering_or.ok()) return Fail(clustering_or.status());

  std::vector<size_t> all(zoo_or->size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;

  TablePrinter table({"method", "epochs", "selected model", "accuracy"});
  {
    BruteForceSelector bf(&*zoo_or, &simulator);
    EpochBudget budget;
    auto outcome = bf.Select(all, **target_or, hp, &budget);
    if (!outcome.ok()) return Fail(outcome.status());
    table.AddRow({"brute force",
                  strings::FormatDouble(budget.total_epochs(), 1),
                  zoo_or->model(outcome->selected_model).name(),
                  strings::FormatDouble(outcome->selected_accuracy, 4)});
  }
  {
    SuccessiveHalvingSelector sh(&*zoo_or, &simulator);
    EpochBudget budget;
    auto outcome = sh.Select(all, **target_or, hp, &budget);
    if (!outcome.ok()) return Fail(outcome.status());
    table.AddRow({"successive halving",
                  strings::FormatDouble(budget.total_epochs(), 1),
                  zoo_or->model(outcome->selected_model).name(),
                  strings::FormatDouble(outcome->selected_accuracy, 4)});
  }
  {
    TwoPhaseSelector selector(&*zoo_or, &*matrix_or, &*clustering_or,
                              &simulator);
    auto report = selector.Select(**target_or, TwoPhaseOptions(), hp);
    if (!report.ok()) return Fail(report.status());
    table.AddRow(
        {"two-phase (CR+FS)",
         strings::FormatDouble(report->budget.total_epochs(), 1),
         zoo_or->model(report->selection.selected_model).name(),
         strings::FormatDouble(report->selection.selected_accuracy, 4)});
  }
  table.Print(std::cout);
  return 0;
}

int RunDatasets(const FlagParser& flags) {
  auto domain_or = DomainFromFlag(flags);
  if (!domain_or.ok()) return Fail(domain_or.status());
  auto registry_or = DatasetRegistry::CreatePaperInventory();
  if (!registry_or.ok()) return Fail(registry_or.status());
  TablePrinter table({"dataset", "role", "labels", "difficulty", "tags"});
  for (const Dataset& ds : registry_or->datasets()) {
    if (ds.spec().domain != *domain_or) continue;
    table.AddRow({ds.name(), ToString(ds.spec().role),
                  std::to_string(ds.spec().num_labels),
                  strings::FormatDouble(ds.spec().difficulty, 2),
                  strings::Join(ds.spec().tags, " ")});
  }
  table.Print(std::cout);
  return 0;
}

int RunModels(const FlagParser& flags) {
  auto domain_or = DomainFromFlag(flags);
  if (!domain_or.ok()) return Fail(domain_or.status());
  auto zoo_or = ZooFor(*domain_or);
  if (!zoo_or.ok()) return Fail(zoo_or.status());
  TablePrinter table({"model", "family", "params (M)", "capability",
                      "fine-tune tags"});
  for (const PretrainedModel& model : zoo_or->models()) {
    table.AddRow({model.name(), model.spec().family,
                  strings::FormatDouble(model.spec().scale_millions, 0),
                  strings::FormatDouble(model.capability(), 3),
                  strings::Join(model.spec().finetune_tags, " ")});
  }
  table.Print(std::cout);
  return 0;
}

int RunCard(const FlagParser& flags) {
  const std::string name = flags.GetString("model");
  if (name.empty()) {
    return Fail(Status::InvalidArgument("--model is required"));
  }
  for (TaskDomain domain : {TaskDomain::kNLP, TaskDomain::kCV}) {
    auto zoo_or = ZooFor(domain);
    if (!zoo_or.ok()) return Fail(zoo_or.status());
    auto model_or = zoo_or->Find(name);
    if (model_or.ok()) {
      std::cout << GenerateModelCard((*model_or)->spec());
      return 0;
    }
  }
  return Fail(Status::NotFound("model not found in either zoo: " + name));
}

/// Prints the line both store subcommands share: what recovery found when
/// the log was replayed. This is the observable face of torn-tail
/// recovery — a crashed writer shows up here as truncated bytes.
void PrintRecoveryStats(const ModelStore& store) {
  std::cout << "recovery: " << store.recovery_stats().ToString() << "\n";
}

int RunStoreInfo(const FlagParser& flags) {
  const std::string store_path = flags.GetString("store");
  if (store_path.empty()) {
    return Fail(Status::InvalidArgument("--store is required"));
  }
  auto store_or = ModelStore::Open(store_path);
  if (!store_or.ok()) return Fail(store_or.status());
  const ModelStore& store = *store_or;

  std::cout << "model store: " << store_path << "\n";
  PrintRecoveryStats(store);
  std::cout << "log records: " << store.log_records() << " ("
            << store.size() << " live entries)\n";
  TablePrinter table({"namespace", "entries", "ids"});
  const auto row = [&table](const char* ns, std::vector<std::string> ids) {
    constexpr size_t kMaxShown = 4;
    const size_t total = ids.size();
    std::string shown;
    if (total > kMaxShown) {
      ids.resize(kMaxShown);
      shown = strings::Join(ids, " ") + " ... +" +
              std::to_string(total - kMaxShown) + " more";
    } else {
      shown = strings::Join(ids, " ");
    }
    table.AddRow({ns, std::to_string(total), shown});
  };
  row("model", store.ListModels());
  row("dataset", store.ListDatasets());
  row("matrix", store.ListMatrices());
  row("clustering", store.ListClusterings());
  row("index", store.ListIndexes());
  table.Print(std::cout);
  return 0;
}

int RunStoreCompact(const FlagParser& flags) {
  const std::string store_path = flags.GetString("store");
  if (store_path.empty()) {
    return Fail(Status::InvalidArgument("--store is required"));
  }
  auto store_or = ModelStore::Open(store_path);
  if (!store_or.ok()) return Fail(store_or.status());
  ModelStore store = std::move(store_or).value();

  PrintRecoveryStats(store);
  const size_t before = store.log_records();
  Status compacted = store.Compact();
  if (!compacted.ok()) return Fail(compacted);
  std::cout << "compacted " << store_path << ": " << before << " -> "
            << store.log_records() << " log records (" << store.size()
            << " live entries)\n";
  return 0;
}

int Dispatch(const std::string& command, const FlagParser& flags) {
  if (command == "offline") return RunOffline(flags);
  if (command == "zoo-gen") return RunZooGen(flags);
  if (command == "recall") return RunRecall(flags);
  if (command == "select") return RunSelect(flags);
  if (command == "trace") return RunTrace(flags);
  if (command == "train-embed") return RunTrainEmbed(flags);
  if (command == "baselines") return RunBaselines(flags);
  if (command == "datasets") return RunDatasets(flags);
  if (command == "models") return RunModels(flags);
  if (command == "card") return RunCard(flags);
  if (command == "store-info") return RunStoreInfo(flags);
  if (command == "store-compact") return RunStoreCompact(flags);
  if (command == "serve") return serve::RunServe(flags);
  if (command == "query") return serve::RunQuery(flags);
  if (command == "reload") return serve::RunReload(flags);
  return Usage();
}

int Main(int argc, char** argv) {
  auto flags_or = FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const FlagParser& flags = *flags_or;
  if (flags.positionals().empty()) return Usage();
  const int code = Dispatch(flags.positionals()[0], flags);
  if (flags.Has("metrics")) {
    // Dump even after a failed command: the counters recorded up to the
    // failure are exactly what a postmortem wants. A dump failure never
    // masks the command's own exit code.
    const int metrics_code = EmitText(MetricsRegistry::Default()->ToJson(2),
                                      flags.GetString("metrics"), "metrics");
    if (code == 0 && metrics_code != 0) return metrics_code;
  }
  return code;
}

}  // namespace
}  // namespace cli
}  // namespace tps

int main(int argc, char** argv) { return tps::cli::Main(argc, argv); }
