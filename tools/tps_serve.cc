// tps_serve — standalone NDJSON selection server.
//
//   tps_serve --domain=nlp --store=store.log --socket=/tmp/tps.sock
//   tps_serve --domain=cv --matrix=m.txt --clustering=c.txt --port=0
//
// Loads the offline artifacts once, then answers selection requests over a
// Unix-domain socket (--socket=PATH) and/or TCP on 127.0.0.1 (--port=N;
// port 0 auto-assigns and prints the chosen port). Tuning: --workers
// (request workers, default 2), --queue (admission-queue depth, 64),
// --threads (pipeline fan-out per request, 1), --cache (proxy-score cache
// entries, 4096; 0 disables), --deadline (default per-request deadline in
// ms, 0 = none).
//
// The wire protocol is one JSON object per line (see src/serve/protocol.h);
// `tps_cli query` is the matching client. A client's {"cmd":"shutdown"}
// stops the server. Identical to `tps_cli serve` — this binary exists so a
// deployment can ship the server without the rest of the CLI.

#include <iostream>

#include "serve/cli_commands.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  auto flags_or = tps::FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::cerr << "error: " << flags_or.status().ToString() << std::endl;
    return 1;
  }
  return tps::serve::RunServe(*flags_or);
}
