#!/usr/bin/env bash
# Static guard against AoS regressions on the proxy-scoring hot path.
#
# The vectorized kernels (src/transfer/kernels.cc) own all per-element
# math; the scorer wrappers validate and dispatch, and the recall-side
# call sites consume SoA layouts through the vec:: helpers. This script
# greps for the patterns that would quietly reintroduce the old
# element-at-a-time structure — it is a tripwire, not a proof, and it
# runs exit-code-audit style as the `no_aos_regression` ctest.
#
#   usage: check_no_aos_regression.sh <repo-root>

set -u

if [[ $# -ne 1 ]]; then
  echo "usage: $0 <repo-root>" >&2
  exit 2
fi

ROOT=$1
SRC=$ROOT/src
FAILURES=0

fail() {
  echo "FAIL: $1" >&2
  shift
  for line in "$@"; do echo "  $line" >&2; done
  FAILURES=$((FAILURES + 1))
}

# 1. Scorer wrappers stay validate-and-dispatch: no Matrix::At element
#    access — per-element math belongs in kernels.cc.
for f in leep.cc nce.cc logme.cc knn_proxy.cc proxy_scorer.cc; do
  hits=$(grep -n "\.At(" "$SRC/transfer/$f" || true)
  if [[ -n "$hits" ]]; then
    fail "src/transfer/$f uses Matrix::At — move the loop into kernels.cc" \
         "$hits"
  else
    echo "ok: src/transfer/$f has no element-at-a-time math"
  fi
done

# 2. The SoA forward pass: vec::Dot (the AoS row-by-row dot) must appear in
#    pretrained_model.cc only inside the retained *Reference section.
ref_line=$(grep -n "ExtractFeaturesReference(" "$SRC/model/pretrained_model.cc" \
  | head -1 | cut -d: -f1)
if [[ -z "$ref_line" ]]; then
  fail "pretrained_model.cc: ExtractFeaturesReference definition not found"
else
  early=$(grep -n "vec::Dot(" "$SRC/model/pretrained_model.cc" \
    | awk -F: -v ref="$ref_line" '$1 < ref' || true)
  if [[ -n "$early" ]]; then
    fail "pretrained_model.cc calls vec::Dot on the hot path (before the Reference section at line $ref_line)" \
         "$early"
  else
    echo "ok: pretrained_model.cc keeps vec::Dot inside the Reference section"
  fi
fi

# 3. Reference kernels are a differential-test oracle, not an API: nothing
#    in src/ outside transfer/ and the model's own Reference pair may call
#    them. (Tests and benches may — they prove the equivalence.)
callers=$(grep -rn "Reference(" "$SRC" --include='*.cc' --include='*.h' \
  | grep -v "^$SRC/transfer/" \
  | grep -v "^$SRC/model/pretrained_model\.\(h\|cc\)" || true)
if [[ -n "$callers" ]]; then
  fail "reference kernels referenced outside src/transfer and the model's Reference pair" \
       "$callers"
else
  echo "ok: reference kernels only referenced from src/transfer and pretrained_model"
fi

# 4. The recall-side call sites that were converted to SoA / row-pointer
#    form must not regrow Matrix::At loops.
for f in core/coarse_recall.cc core/task_similarity.cc; do
  hits=$(grep -n "\.At(" "$SRC/$f" || true)
  if [[ -n "$hits" ]]; then
    fail "src/$f reintroduced Matrix::At on the recall hot path" "$hits"
  else
    echo "ok: src/$f stays on the SoA/row-pointer form"
  fi
done

if [[ $FAILURES -ne 0 ]]; then
  echo "$FAILURES AoS regression check(s) failed" >&2
  exit 1
fi
echo "no AoS regressions detected"
