#!/usr/bin/env bash
# Static guard against linear-scan regressions on the indexed recall path.
#
# The sub-linear recall contract (DESIGN.md "Sub-linear recall index"):
# when a request is served through a RecallIndex, the online phase runs
# entirely off the IndexStructure — it probes nprobe partitions and ranks
# only their posting lists plus the propagation tail, and never walks the
# zoo, the performance matrix or the clustering. This script greps for the
# patterns that would quietly reintroduce a full-zoo O(|M|) sweep into
# that section — it is a tripwire, not a proof, and it runs exit-code-audit
# style as the `no_linear_recall` ctest.
#
#   usage: check_no_linear_recall.sh <repo-root>

set -u

if [[ $# -ne 1 ]]; then
  echo "usage: $0 <repo-root>" >&2
  exit 2
fi

ROOT=$1
SRC=$ROOT/src
RECALL=$SRC/core/coarse_recall.cc
FAILURES=0

fail() {
  echo "FAIL: $1" >&2
  shift
  for line in "$@"; do echo "  $line" >&2; done
  FAILURES=$((FAILURES + 1))
}

# 1. The marker pair delimiting the indexed ranking section must exist —
#    the later checks are scoped to it, so losing a marker silently
#    disables them.
begin_line=$(grep -n "\[indexed-recall-begin\]" "$RECALL" | head -1 | cut -d: -f1)
end_line=$(grep -n "\[indexed-recall-end\]" "$RECALL" | head -1 | cut -d: -f1)
if [[ -z "$begin_line" || -z "$end_line" ]] || (( begin_line >= end_line )); then
  fail "coarse_recall.cc: [indexed-recall-begin]/[indexed-recall-end] markers missing or out of order"
else
  echo "ok: coarse_recall.cc carries the indexed-recall markers"

  # 2. Inside the markers the code may only read the IndexStructure:
  #    touching the zoo, the performance matrix or the clustering there is
  #    exactly the full-sweep regression this script exists to catch.
  section=$(sed -n "${begin_line},${end_line}p" "$RECALL")
  hits=$(echo "$section" | grep -n "zoo_->\|matrix_->\|clustering_->" || true)
  if [[ -n "$hits" ]]; then
    fail "coarse_recall.cc indexed section reads zoo_/matrix_/clustering_ — the online path must stay on the index structure (offsets relative to line $begin_line)" \
         "$hits"
  else
    echo "ok: indexed ranking section stays on the IndexStructure"
  fi
fi

# 3. The serving layer must actually route requests through the index:
#    SelectionService::Run wires the snapshot's index into the recall
#    options. Dropping that line would silently serve every request
#    through the legacy sweep while the bench still reports indexed wins.
if grep -q "options\.recall\.index = artifacts\.index\.get()" "$SRC/serve/service.cc"; then
  echo "ok: service.cc routes requests through the published index"
else
  fail "service.cc no longer wires artifacts.index into RecallOptions — indexed serving is disconnected"
fi

# 4. The IVF probe stays nprobe-bounded: ProbePartitions must consume its
#    probe budget. A backend that ignores nprobe degenerates to probing
#    everything — sub-linear in name only.
if grep -A 8 "IvfIndex::ProbePartitions" "$SRC/index/ivf_index.cc" | grep -q "nprobe"; then
  echo "ok: ivf_index.cc ProbePartitions consumes the nprobe budget"
else
  fail "ivf_index.cc ProbePartitions no longer references nprobe — probe budget is dead"
fi

# 5. The embedding backend's scoring section is delimited the same way:
#    inside the markers only dot products against the trained embeddings
#    are allowed — touching the zoo, the performance matrix, the
#    clustering, or looping over num_models() there would reintroduce a
#    full-zoo sweep behind the embedding IVF's back.
EMB=$SRC/recall/embedding_backend.cc
emb_begin=$(grep -n "\[embedding-recall-begin\]" "$EMB" | head -1 | cut -d: -f1)
emb_end=$(grep -n "\[embedding-recall-end\]" "$EMB" | head -1 | cut -d: -f1)
if [[ -z "$emb_begin" || -z "$emb_end" ]] || (( emb_begin >= emb_end )); then
  fail "embedding_backend.cc: [embedding-recall-begin]/[embedding-recall-end] markers missing or out of order"
else
  echo "ok: embedding_backend.cc carries the embedding-recall markers"
  emb_section=$(sed -n "${emb_begin},${emb_end}p" "$EMB")
  emb_hits=$(echo "$emb_section" | grep -v '^[[:space:]]*//' \
    | grep -n "zoo\|matrix\|clustering\|num_models()" || true)
  if [[ -n "$emb_hits" ]]; then
    fail "embedding_backend.cc scoring section must stay on the probed candidates (offsets relative to line $emb_begin)" \
         "$emb_hits"
  else
    echo "ok: embedding scoring section stays on the probed candidates"
  fi
fi

# 6. The geometric probe stays nprobe-bounded, like check 4 for the
#    accuracy-vector probe.
if grep -A 12 "IvfIndex::ProbePartitionsNearQuery" "$SRC/index/ivf_index.cc" | grep -q "nprobe"; then
  echo "ok: ivf_index.cc ProbePartitionsNearQuery consumes the nprobe budget"
else
  fail "ivf_index.cc ProbePartitionsNearQuery no longer references nprobe — probe budget is dead"
fi

# 7. The recall subsystem must stay proxy-agnostic: backends rank with the
#    trained embeddings and the shared CoarseRecall entry point, never by
#    including a transfer-proxy header directly. A LEEP #include in
#    src/recall/ couples the backend layer to one proxy implementation.
transfer_includes=$(grep -rn '#include "transfer/' "$SRC/recall/" || true)
if [[ -n "$transfer_includes" ]]; then
  fail "src/recall/ includes transfer-proxy headers — backends must stay proxy-agnostic" \
       "$transfer_includes"
else
  echo "ok: src/recall/ is free of transfer-proxy includes"
fi

if [[ $FAILURES -ne 0 ]]; then
  echo "$FAILURES linear-recall regression check(s) failed" >&2
  exit 1
fi
echo "no linear-scan recall regressions detected"
